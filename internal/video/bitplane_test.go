package video

import (
	"math"
	"testing"
)

func TestBitplaneModelSizes(t *testing.T) {
	m := DefaultBitplaneModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.PlaneBytes(0) != 2000 {
		t.Errorf("plane 0 = %d", m.PlaneBytes(0))
	}
	if m.PlaneBytes(1) != 3200 {
		t.Errorf("plane 1 = %d, want 3200", m.PlaneBytes(1))
	}
	total := m.TotalBytes()
	// Sized to approximate the paper's 52,500-byte enhancement layer.
	if total < 45000 || total > 60000 {
		t.Errorf("total bytes = %d, want ≈ 52500", total)
	}
}

func TestBitplaneGainSteps(t *testing.T) {
	m := DefaultBitplaneModel()
	if m.Gain(0) != 0 || m.Gain(-10) != 0 {
		t.Error("gain at zero bytes")
	}
	// Exactly one full plane.
	if got := m.Gain(m.PlaneBytes(0)); math.Abs(got-m.StepDB) > 1e-9 {
		t.Errorf("one plane = %v, want %v", got, m.StepDB)
	}
	// Half of the first plane pro-rates.
	if got := m.Gain(m.PlaneBytes(0) / 2); math.Abs(got-m.StepDB/2) > 1e-9 {
		t.Errorf("half plane = %v, want %v", got, m.StepDB/2)
	}
	// The full layer reaches MaxGain.
	if got := m.Gain(m.TotalBytes()); math.Abs(got-m.MaxGain()) > 1e-9 {
		t.Errorf("full layer = %v, want %v", got, m.MaxGain())
	}
	// Beyond the layer, gain saturates.
	if got := m.Gain(10 * m.TotalBytes()); math.Abs(got-m.MaxGain()) > 1e-9 {
		t.Errorf("beyond layer = %v, want saturation at %v", got, m.MaxGain())
	}
}

func TestBitplaneGainMonotoneAndDiminishing(t *testing.T) {
	m := DefaultBitplaneModel()
	prev := 0.0
	// Per-byte efficiency must fall (or stay flat) as bytes grow: later
	// bitplanes are bigger but contribute the same step.
	prevEff := math.Inf(1)
	for b := 500; b <= m.TotalBytes(); b += 500 {
		g := m.Gain(b)
		if g < prev-1e-12 {
			t.Fatalf("gain not monotone at %d bytes", b)
		}
		eff := g / float64(b)
		if eff > prevEff+1e-12 {
			t.Fatalf("per-byte efficiency increased at %d bytes", b)
		}
		prev, prevEff = g, eff
	}
}

func TestBitplanePSNR(t *testing.T) {
	m := DefaultBitplaneModel()
	if got := m.PSNR(30, false, 99999); got != m.ConcealmentPSNR {
		t.Errorf("lost base PSNR = %v", got)
	}
	if got := m.PSNR(30, true, 0); got != 30 {
		t.Errorf("base-only PSNR = %v", got)
	}
}

func TestBitplaneValidate(t *testing.T) {
	bad := []BitplaneModel{
		{Planes: 0, FirstPlaneBytes: 1, Growth: 2, StepDB: 1},
		{Planes: 1, FirstPlaneBytes: 0, Growth: 2, StepDB: 1},
		{Planes: 1, FirstPlaneBytes: 1, Growth: 0.5, StepDB: 1},
		{Planes: 1, FirstPlaneBytes: 1, Growth: 2, StepDB: 0},
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", m)
		}
	}
}

// TestBitplaneAgreesWithRDModelShape: both quality models must rank the
// same byte budgets the same way and land within a few dB of each other
// across the operating range — the Fig. 10 conclusions cannot hinge on
// the model choice.
func TestBitplaneAgreesWithRDModelShape(t *testing.T) {
	bp := DefaultBitplaneModel()
	rd := DefaultRDModel()
	for b := 1000; b <= 50000; b += 1000 {
		g1, g2 := bp.Gain(b), rd.Gain(b)
		if math.Abs(g1-g2) > 6 {
			t.Errorf("models diverge at %d bytes: bitplane %.1f vs log %.1f dB", b, g1, g2)
		}
	}
}
