package video

import (
	"fmt"
	"math"
)

// BitplaneModel is an alternative quality model that follows MPEG-4 FGS
// coding structure more literally than the logarithmic RDModel: the
// enhancement layer consists of bitplanes of the DCT residual, each
// roughly doubling the bit budget of the previous one and contributing a
// comparable PSNR step (~6 dB per fully decoded bitplane in the ideal
// transform-coding model; real FGS nets less). Decoding stops at the first
// missing byte, so a partially received bitplane contributes a pro-rated
// share of its step.
//
// The experiments use it as a robustness check: the Fig. 10 comparison's
// shape must not depend on which quality model maps bytes to dB.
type BitplaneModel struct {
	// Planes is the number of enhancement bitplanes (MPEG-4 FGS streams
	// typically carry 5-7).
	Planes int
	// FirstPlaneBytes is the size of the most significant bitplane; each
	// subsequent plane is Growth times larger.
	FirstPlaneBytes int
	Growth          float64
	// StepDB is the PSNR contribution of each fully decoded bitplane.
	StepDB float64
	// ConcealmentPSNR as in RDModel.
	ConcealmentPSNR float64
}

// DefaultBitplaneModel returns a model sized to the paper's 52,500-byte
// Foreman enhancement layer: 6 planes growing ×1.6 from 2,000 bytes
// (total ≈ 52.6 kB), 4.3 dB per plane (≈ 26 dB at full rate, matching the
// calibrated RDModel's MaxGain).
func DefaultBitplaneModel() BitplaneModel {
	return BitplaneModel{
		Planes:          6,
		FirstPlaneBytes: 2000,
		Growth:          1.6,
		StepDB:          26.0 / 6,
		ConcealmentPSNR: 15.0,
	}
}

// Validate reports configuration errors.
func (m BitplaneModel) Validate() error {
	if m.Planes <= 0 {
		return fmt.Errorf("video: bitplane model needs planes > 0, got %d", m.Planes)
	}
	if m.FirstPlaneBytes <= 0 {
		return fmt.Errorf("video: first plane bytes must be positive, got %d", m.FirstPlaneBytes)
	}
	if m.Growth < 1 {
		return fmt.Errorf("video: growth must be >= 1, got %v", m.Growth)
	}
	if m.StepDB <= 0 {
		return fmt.Errorf("video: step dB must be positive, got %v", m.StepDB)
	}
	return nil
}

// PlaneBytes returns the size of bitplane i (0 = most significant).
func (m BitplaneModel) PlaneBytes(i int) int {
	return int(float64(m.FirstPlaneBytes) * math.Pow(m.Growth, float64(i)))
}

// TotalBytes returns the full enhancement-layer size.
func (m BitplaneModel) TotalBytes() int {
	total := 0
	for i := 0; i < m.Planes; i++ {
		total += m.PlaneBytes(i)
	}
	return total
}

// Gain returns the PSNR improvement for b consecutively decodable
// enhancement bytes: full steps for complete bitplanes plus a pro-rated
// share of the first incomplete one.
func (m BitplaneModel) Gain(b int) float64 {
	if b <= 0 {
		return 0
	}
	gain := 0.0
	for i := 0; i < m.Planes; i++ {
		size := m.PlaneBytes(i)
		if b >= size {
			gain += m.StepDB
			b -= size
			continue
		}
		gain += m.StepDB * float64(b) / float64(size)
		break
	}
	return gain
}

// MaxGain returns the improvement at the full enhancement layer.
func (m BitplaneModel) MaxGain() float64 { return m.StepDB * float64(m.Planes) }

// PSNR mirrors RDModel.PSNR for drop-in use.
func (m BitplaneModel) PSNR(basePSNR float64, baseComplete bool, usefulEnhBytes int) float64 {
	if !baseComplete {
		return m.ConcealmentPSNR
	}
	return basePSNR + m.Gain(usefulEnhBytes)
}
