// Package video maps streaming outcomes to video quality. The paper
// evaluates PELS by reconstructing MPEG-4 FGS CIF Foreman offline from
// per-frame packet-loss statistics and plotting PSNR (Fig. 10). The actual
// bitstream and decoder are not reproducible from the paper, so this
// package substitutes a calibrated synthetic model (see DESIGN.md §4):
//
//   - a deterministic Foreman-like trace of per-frame base-layer PSNR and
//     scene complexity (the sequence's camera pan and scene change produce
//     the characteristic quality dips), and
//   - a logarithmic rate-distortion curve mapping decodable enhancement
//     bytes to PSNR gain, the standard shape for FGS bitplane coding
//     (each additional bitplane costs roughly twice the bits of the
//     previous one and adds a similar dB step).
//
// Only the comparative shape matters for the reproduction: best-effort
// streaming decodes a short useful prefix per frame (low gain, highly
// variable), while PELS decodes almost everything it receives (high gain,
// smooth).
package video

import (
	"fmt"
	"math"
)

// RDModel is a logarithmic rate-distortion curve for one FGS stream:
// PSNR(b) = Base + MaxGain · ln(1 + Κ·b) / ln(1 + Κ·B_max) for b bytes of
// decodable enhancement data.
type RDModel struct {
	// MaxGain is the PSNR improvement (dB) at the full enhancement layer.
	MaxGain float64
	// Kappa shapes the curve's knee; larger values give more gain to the
	// first bytes (diminishing returns sooner).
	Kappa float64
	// MaxEnhBytes is B_max, the full enhancement-layer size per frame.
	MaxEnhBytes int
	// ConcealmentPSNR is the quality floor when the base layer of a frame
	// is lost and the decoder conceals from the previous frame.
	ConcealmentPSNR float64
}

// DefaultRDModel returns the model calibrated against the paper's reported
// numbers (Fig. 10: base ≈ 29 dB, PELS gain ≈ 55-60%, best-effort gain
// ≈ 16-24% at 10-19% loss) for the 52,500-byte Foreman enhancement layer:
// MaxGain reproduces PELS's +60% at its measured useful-byte level, and
// Kappa sets the diminishing-returns knee so the best-effort/PELS gain
// ratio matches the paper's (~0.4 at a 10× useful-byte gap).
func DefaultRDModel() RDModel {
	return RDModel{
		MaxGain:         26.0,
		Kappa:           1e-3,
		MaxEnhBytes:     52500,
		ConcealmentPSNR: 15.0,
	}
}

// Validate reports configuration errors.
func (m RDModel) Validate() error {
	if m.MaxGain <= 0 {
		return fmt.Errorf("video: MaxGain must be positive, got %v", m.MaxGain)
	}
	if m.Kappa <= 0 {
		return fmt.Errorf("video: Kappa must be positive, got %v", m.Kappa)
	}
	if m.MaxEnhBytes <= 0 {
		return fmt.Errorf("video: MaxEnhBytes must be positive, got %d", m.MaxEnhBytes)
	}
	return nil
}

// Gain returns the PSNR improvement for b decodable enhancement bytes.
func (m RDModel) Gain(b int) float64 {
	if b <= 0 {
		return 0
	}
	if b > m.MaxEnhBytes {
		b = m.MaxEnhBytes
	}
	return m.MaxGain * math.Log(1+m.Kappa*float64(b)) / math.Log(1+m.Kappa*float64(m.MaxEnhBytes))
}

// PSNR returns the reconstructed quality of a frame with the given
// base-layer PSNR, base completeness, and decodable enhancement bytes.
func (m RDModel) PSNR(basePSNR float64, baseComplete bool, usefulEnhBytes int) float64 {
	if !baseComplete {
		return m.ConcealmentPSNR
	}
	return basePSNR + m.Gain(usefulEnhBytes)
}
