package video

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRDModelGainBounds(t *testing.T) {
	m := DefaultRDModel()
	if got := m.Gain(0); got != 0 {
		t.Errorf("Gain(0) = %v, want 0", got)
	}
	if got := m.Gain(-100); got != 0 {
		t.Errorf("Gain(-100) = %v, want 0", got)
	}
	if got := m.Gain(m.MaxEnhBytes); math.Abs(got-m.MaxGain) > 1e-9 {
		t.Errorf("Gain(full layer) = %v, want MaxGain %v", got, m.MaxGain)
	}
	if got := m.Gain(10 * m.MaxEnhBytes); math.Abs(got-m.MaxGain) > 1e-9 {
		t.Errorf("Gain beyond full layer = %v, want clamp at %v", got, m.MaxGain)
	}
}

func TestRDModelMonotoneConcave(t *testing.T) {
	m := DefaultRDModel()
	prev, prevDelta := 0.0, math.Inf(1)
	for b := 1000; b <= m.MaxEnhBytes; b += 1000 {
		g := m.Gain(b)
		if g < prev {
			t.Fatalf("gain not monotone at %d bytes", b)
		}
		delta := g - prev
		if delta > prevDelta+1e-9 {
			t.Fatalf("gain not concave at %d bytes (diminishing returns violated)", b)
		}
		prev, prevDelta = g, delta
	}
}

func TestRDModelPSNR(t *testing.T) {
	m := DefaultRDModel()
	if got := m.PSNR(30, true, 0); got != 30 {
		t.Errorf("PSNR with no enhancement = %v, want base 30", got)
	}
	if got := m.PSNR(30, false, 50000); got != m.ConcealmentPSNR {
		t.Errorf("PSNR with lost base = %v, want concealment %v", got, m.ConcealmentPSNR)
	}
	if got := m.PSNR(30, true, m.MaxEnhBytes); math.Abs(got-(30+m.MaxGain)) > 1e-9 {
		t.Errorf("full enhancement PSNR = %v", got)
	}
}

func TestRDModelValidate(t *testing.T) {
	bad := []RDModel{
		{MaxGain: 0, Kappa: 1, MaxEnhBytes: 1},
		{MaxGain: 1, Kappa: 0, MaxEnhBytes: 1},
		{MaxGain: 1, Kappa: 1, MaxEnhBytes: 0},
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", m)
		}
	}
	if err := DefaultRDModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
}

func TestForemanTraceDeterministic(t *testing.T) {
	a := ForemanTrace(300)
	b := ForemanTrace(300)
	if a.Len() != 300 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := range a.Frames {
		if a.Frames[i] != b.Frames[i] {
			t.Fatalf("trace not deterministic at frame %d", i)
		}
	}
}

func TestForemanTraceShape(t *testing.T) {
	tr := ForemanTrace(300)
	mean := tr.MeanBasePSNR()
	if mean < 27 || mean < 0 || mean > 32 {
		t.Errorf("mean base PSNR = %.2f, want ~29", mean)
	}
	// The camera-pan dip (around 60-75% of the sequence) should be below
	// the talking-head average.
	var head, pan float64
	for i := 0; i < 150; i++ {
		head += tr.Frames[i].BasePSNR
	}
	head /= 150
	for i := 190; i < 215; i++ {
		pan += tr.Frames[i].BasePSNR
	}
	pan /= 25
	if pan >= head {
		t.Errorf("camera-pan PSNR %.2f not below talking-head %.2f", pan, head)
	}
	for i, f := range tr.Frames {
		if f.Complexity < 1 || f.Complexity > 2 {
			t.Errorf("frame %d complexity %v out of range [1,2]", i, f.Complexity)
		}
	}
}

func TestTraceFrameWrapsAround(t *testing.T) {
	tr := ForemanTrace(300)
	f := tr.Frame(305)
	if f.BasePSNR != tr.Frames[5].BasePSNR {
		t.Error("Frame(305) did not wrap to frame 5")
	}
	if f.Index != 305 {
		t.Errorf("wrapped frame index = %d, want 305", f.Index)
	}
}

func TestTraceEmptyFallback(t *testing.T) {
	tr := &Trace{}
	f := tr.Frame(3)
	if f.BasePSNR != 30 || f.Complexity != 1 {
		t.Errorf("empty trace fallback = %+v", f)
	}
	if tr.MeanBasePSNR() != 0 {
		t.Error("empty trace mean != 0")
	}
}

func TestConstantTrace(t *testing.T) {
	tr := ConstantTrace(10, 33)
	for i := 0; i < 10; i++ {
		if tr.Frame(i).BasePSNR != 33 {
			t.Fatalf("frame %d PSNR != 33", i)
		}
	}
}

func TestSequencePSNR(t *testing.T) {
	tr := ConstantTrace(3, 30)
	m := DefaultRDModel()
	useful := []int{0, m.MaxEnhBytes, 1000}
	complete := []bool{true, true, false}
	psnr := SequencePSNR(tr, m, useful, complete)
	if psnr[0] != 30 {
		t.Errorf("frame 0 = %v, want 30", psnr[0])
	}
	if math.Abs(psnr[1]-(30+m.MaxGain)) > 1e-9 {
		t.Errorf("frame 1 = %v, want %v", psnr[1], 30+m.MaxGain)
	}
	if psnr[2] != m.ConcealmentPSNR {
		t.Errorf("frame 2 = %v, want concealment", psnr[2])
	}
}

func TestSequencePSNRNilBaseComplete(t *testing.T) {
	tr := ConstantTrace(2, 30)
	m := DefaultRDModel()
	psnr := SequencePSNR(tr, m, []int{0, 0}, nil)
	for i, v := range psnr {
		if v != 30 {
			t.Errorf("frame %d = %v, want 30 (nil baseComplete means all complete)", i, v)
		}
	}
}

func TestSequencePSNRComplexityScalesGain(t *testing.T) {
	m := DefaultRDModel()
	tr := &Trace{Frames: []TraceFrame{
		{BasePSNR: 30, Complexity: 1},
		{BasePSNR: 30, Complexity: 2},
	}}
	psnr := SequencePSNR(tr, m, []int{10000, 10000}, nil)
	g1, g2 := psnr[0]-30, psnr[1]-30
	if math.Abs(g2-g1/2) > 1e-9 {
		t.Errorf("complexity-2 gain = %v, want half of %v (same bytes, harder frame)", g2, g1)
	}
}

func TestImprovementPercent(t *testing.T) {
	tr := ConstantTrace(4, 30)
	psnr := []float64{33, 33, 33, 33}
	if got := ImprovementPercent(tr, psnr); math.Abs(got-10) > 1e-9 {
		t.Errorf("improvement = %v%%, want 10%%", got)
	}
	if got := ImprovementPercent(tr, nil); got != 0 {
		t.Errorf("empty improvement = %v, want 0", got)
	}
}

// TestGainScalesWithMaxGainProperty: gain is proportional to MaxGain and
// bounded by it.
func TestGainScalesWithMaxGainProperty(t *testing.T) {
	f := func(bytesRaw uint16, gainRaw uint8) bool {
		m := DefaultRDModel()
		m.MaxGain = 1 + float64(gainRaw)/8
		b := int(bytesRaw) * 2
		g := m.Gain(b)
		if g < 0 || g > m.MaxGain+1e-9 {
			return false
		}
		m2 := m
		m2.MaxGain = m.MaxGain * 2
		return math.Abs(m2.Gain(b)-2*g) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSequenceTraceCharacters(t *testing.T) {
	foreman := ForemanTrace(300)
	akiyo := AkiyoTrace(300)
	coast := CoastguardTrace(300)
	// Static content has the best base quality, panning the worst.
	if !(akiyo.MeanBasePSNR() > foreman.MeanBasePSNR() && foreman.MeanBasePSNR() > coast.MeanBasePSNR()) {
		t.Errorf("base PSNR ordering akiyo %.1f > foreman %.1f > coastguard %.1f violated",
			akiyo.MeanBasePSNR(), foreman.MeanBasePSNR(), coast.MeanBasePSNR())
	}
	meanComplexity := func(tr *Trace) float64 {
		sum := 0.0
		for _, f := range tr.Frames {
			sum += f.Complexity
		}
		return sum / float64(len(tr.Frames))
	}
	if !(meanComplexity(akiyo) < meanComplexity(foreman) && meanComplexity(foreman) < meanComplexity(coast)) {
		t.Error("complexity ordering akiyo < foreman < coastguard violated")
	}
	// The same delivered bytes enhance easy content more than hard content.
	m := DefaultRDModel()
	useful := make([]int, 300)
	for i := range useful {
		useful[i] = 20000
	}
	gainOf := func(tr *Trace) float64 {
		psnr := SequencePSNR(tr, m, useful, nil)
		sum := 0.0
		for i, v := range psnr {
			sum += v - tr.Frame(i).BasePSNR
		}
		return sum / float64(len(psnr))
	}
	if !(gainOf(akiyo) > gainOf(coast)) {
		t.Errorf("gain on akiyo %.2f not above coastguard %.2f", gainOf(akiyo), gainOf(coast))
	}
}
