package perf

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/session"
)

// Session subsystem benchmarks: the three per-packet/per-wake hot paths
// the multi-session server leans on — table lookup (every feedback
// datagram), wheel advance (every pacing tick), and batched feedback
// dispatch (every flush). All three must stay allocation-free in steady
// state or ten thousand sessions turn the GC into the bottleneck.

// benchSink discards session output.
type benchSink struct{}

func (benchSink) WriteTo(b []byte, _ net.Addr) (int, error) { return len(b), nil }

func benchSession(b *testing.B, key session.Key, now time.Time) *session.Session {
	b.Helper()
	cfg := session.Config{}.WithDefaults()
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	s, err := session.NewSession(key, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}, benchSink{}, cfg, now)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSessionTableLookup measures Table.Get against a table of 4096
// live sessions across 16 shards — the per-feedback-datagram path.
func BenchmarkSessionTableLookup(b *testing.B) {
	now := time.Unix(1700000000, 0)
	tb := session.NewTable(16)
	const n = 4096
	keys := make([]session.Key, n)
	for i := 0; i < n; i++ {
		keys[i] = session.Key{
			Addr: fmt.Sprintf("10.%d.%d.%d:%d", i>>16&255, i>>8&255, i&255, 5000+i&1023),
			Flow: uint32(i + 1),
		}
		tb.Put(keys[i], benchSession(b, keys[i], now))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tb.Get(keys[i&(n-1)]) == nil {
			b.Fatal("lookup miss")
		}
	}
}

// BenchmarkSessionWheelAdvance measures one wheel tick with 1024 armed
// timers: advance the cursor, collect the due timers, re-arm each at its
// next deadline — the driver's steady-state loop.
func BenchmarkSessionWheelAdvance(b *testing.B) {
	t0 := time.Unix(1700000000, 0)
	w := session.NewWheel(time.Millisecond, 512, t0)
	const n = 1024
	for i := 0; i < n; i++ {
		w.Schedule(t0.Add(time.Duration(1+i%16)*time.Millisecond), func(time.Time) {})
	}
	var fired []*session.Timer
	now := t0
	// Warm the slot backing arrays to steady-state capacity so the
	// measured window sees the zero-alloc regime, not first-lap growth.
	tick := func(i int) {
		now = now.Add(time.Millisecond)
		fired = w.Advance(now, fired[:0])
		for j, t := range fired {
			w.Reschedule(t, now.Add(time.Duration(1+(i+j)%16)*time.Millisecond))
			fired[j] = nil
		}
	}
	for i := 0; i < 4096; i++ {
		tick(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick(i)
	}
	if w.Len() != n {
		b.Fatalf("wheel leaked timers: %d, want %d", w.Len(), n)
	}
}

// BenchmarkSessionFeedbackBatch measures applying one flushed batch of 64
// feedback labels to a session under a single lock acquisition — the
// dispatch path behind the count+maxWait batcher.
func BenchmarkSessionFeedbackBatch(b *testing.B) {
	now := time.Unix(1700000000, 0)
	s := benchSession(b, session.Key{Addr: "10.0.0.1:5000", Flow: 1}, now)
	const batch = 64
	labels := make([]packet.Feedback, batch)
	epoch := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range labels {
			epoch++
			labels[j] = packet.Feedback{RouterID: 1, Epoch: epoch, Loss: 0.05, Valid: true}
		}
		if got := s.HandleFeedbackBatch(labels, now); got != batch {
			b.Fatalf("accepted %d of %d labels", got, batch)
		}
	}
}
