package perf

import (
	"testing"

	"repro/internal/fgs"
	"repro/internal/packet"
	"repro/internal/queue"
)

// The benchmarks below gate the N-layer generalization: the 3-color plan
// split, the N-way ladder split, and the strict-priority classifier must
// all stay allocation-free — the 3-layer numbers are the pre-refactor
// baseline the generalized code paths have to match.

func BenchmarkPlanShare(b *testing.B) {
	pk := fgs.MustNewPacketizer(fgs.DefaultFrameSpec())
	budget := pk.Spec().FrameBytes() * 3 / 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := pk.PlanShare(i, budget, 0.3, fgs.RedShareTotal)
		if plan.Total() == 0 {
			b.Fatal("empty plan")
		}
	}
}

func BenchmarkPlanLayers8(b *testing.B) {
	pk := fgs.MustNewPacketizer(fgs.DefaultFrameSpec())
	budget := pk.Spec().FrameBytes() * 3 / 4
	gammas := make([]float64, 7)
	counts := make([]int, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fgs.Ladder(gammas, 0.3)
		pk.PlanLayersInto(counts, i, budget, gammas, fgs.RedShareTotal)
		if counts[0] == 0 {
			b.Fatal("empty base layer")
		}
	}
}

// BenchmarkPriorityClassify measures the color→layer-queue classification
// plus enqueue/dequeue round trip on an 8-layer priority set, cycling
// through every layer color. Expect 0 allocs/op.
func BenchmarkPriorityClassify(b *testing.B) {
	pq := queue.NewPriority(queue.NLayerPriorityConfig(8))
	pkts := make([]*packet.Packet, 8)
	for i := range pkts {
		pkts[i] = &packet.Packet{Color: packet.LayerColor(i), Size: 500}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		if !pq.Enqueue(p) {
			b.Fatal("drop on empty queue")
		}
		if pq.Dequeue() == nil {
			b.Fatal("empty dequeue")
		}
	}
}
