// Package perf turns `go test -bench` output into a schema-stable JSON
// report and compares two reports for regressions. It is the library behind
// `make bench-json` (which maintains the BENCH_*.json trajectory at the
// repository root) and cmd/perfdiff (which gates CI on it).
//
// Everything here is stdlib-only and deliberately dumb: the benchmark text
// format is the interface Go has kept stable for a decade, and a flat JSON
// array keyed by benchmark name is trivial to diff across commits.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the report layout. Bump only when a field changes
// meaning; adding benchmarks or metrics is not a schema change.
const Schema = "pels-bench/v1"

// Benchmark is one benchmark's figures. NsPerOp, BytesPerOp and
// AllocsPerOp mirror the standard testing outputs; Metrics carries custom
// b.ReportMetric units (e.g. "events/sec").
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole perf snapshot.
type Report struct {
	Schema     string      `json:"schema"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// gomaxprocsSuffix strips the "-8" CPU suffix the bench runner appends.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` text (possibly the concatenation of several
// runs) and returns a Report with benchmarks sorted by name. Lines that are
// not benchmark results are ignored. A duplicate benchmark name gets a
// "#2", "#3", … suffix so no result is silently dropped.
func Parse(r io.Reader) (Report, error) {
	rep := Report{Schema: Schema}
	seen := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum shape: name, N, value, unit.
		if len(fields) < 4 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name: gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Runs: runs,
		}
		// The tail is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Report{}, fmt.Errorf("perf: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		seen[b.Name]++
		if n := seen[b.Name]; n > 1 {
			b.Name = fmt.Sprintf("%s#%d", b.Name, n)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return Report{}, fmt.Errorf("perf: reading bench output: %w", err)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// Best collapses repeated runs of the same benchmark (the "#2", "#3", …
// names Parse assigns, as produced by `go test -count=N`) into one entry:
// minimum ns/op — the least-interference sample, the standard statistic
// for gating on shared machines — and maximum B/op and allocs/op, so a
// run only has to allocate once for the gate to see it. Custom metrics
// come from the min-ns run. Single-run benchmarks pass through unchanged.
func (r Report) Best() Report {
	type agg struct {
		best Benchmark
		idx  int
	}
	byName := map[string]*agg{}
	order := make([]string, 0, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		name := b.Name
		if i := strings.LastIndexByte(name, '#'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		a, ok := byName[name]
		if !ok {
			b.Name = name
			byName[name] = &agg{best: b}
			order = append(order, name)
			continue
		}
		if b.NsPerOp < a.best.NsPerOp {
			a.best.NsPerOp = b.NsPerOp
			a.best.Metrics = b.Metrics
		}
		if b.BytesPerOp > a.best.BytesPerOp {
			a.best.BytesPerOp = b.BytesPerOp
		}
		if b.AllocsPerOp > a.best.AllocsPerOp {
			a.best.AllocsPerOp = b.AllocsPerOp
		}
	}
	out := Report{Schema: r.Schema, Benchmarks: make([]Benchmark, 0, len(order))}
	for _, name := range order {
		out.Benchmarks = append(out.Benchmarks, byName[name].best)
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool {
		return out.Benchmarks[i].Name < out.Benchmarks[j].Name
	})
	return out
}

// WriteJSON writes the report with stable formatting (sorted benchmarks,
// two-space indent, trailing newline) so committed snapshots diff cleanly.
func (r Report) WriteJSON(w io.Writer) error {
	sort.Slice(r.Benchmarks, func(i, j int) bool {
		return r.Benchmarks[i].Name < r.Benchmarks[j].Name
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report and checks its schema tag.
func ReadJSON(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("perf: parsing report: %w", err)
	}
	if rep.Schema != Schema {
		return Report{}, fmt.Errorf("perf: report schema %q, this tool speaks %q", rep.Schema, Schema)
	}
	return rep, nil
}

// Lookup returns the named benchmark.
func (r Report) Lookup(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Regression is one gated comparison that got worse.
type Regression struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"` // "ns/op", "allocs/op", or "missing"
	Base   float64 `json:"base"`
	New    float64 `json:"new"`
}

func (g Regression) String() string {
	if g.Metric == "missing" {
		return fmt.Sprintf("%s: gated benchmark missing from new report", g.Name)
	}
	if g.Base == 0 {
		return fmt.Sprintf("%s: %s %.4g -> %.4g", g.Name, g.Metric, g.Base, g.New)
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%)",
		g.Name, g.Metric, g.Base, g.New, 100*(g.New-g.Base)/g.Base)
}

// DiffConfig tunes the regression gate.
type DiffConfig struct {
	// Gate selects which benchmarks are enforced; nil gates everything.
	Gate *regexp.Regexp
	// MaxNsRegress is the tolerated fractional ns/op increase (0.20 = 20%).
	MaxNsRegress float64
	// AllocsOnly skips the ns/op gate — for noisy machines where only the
	// allocation counts are reproducible.
	AllocsOnly bool
}

// allocSlack is the tolerated fractional allocs/op increase. For the
// benchmarks the speed program cares about — 0 or 1 allocs/op — any
// increase still trips the gate (0×slack and 1×slack both round below one
// whole allocation). Benchmarks that allocate by design (the macro pair
// builds an engine and 16k closures per iteration) get proportional slack,
// because allocs/op at that scale wobbles by ±1 from runtime internals
// (stack growth, map rehash timing) without any code change.
const allocSlack = 0.001

// Diff compares cur against base and returns every gated regression: an
// ns/op increase beyond MaxNsRegress, an allocs/op increase beyond
// allocSlack (zero tolerance at zero), or a gated benchmark that
// disappeared. Benchmarks present only in cur are fine (the suite grows);
// improvements are fine.
func Diff(base, cur Report, cfg DiffConfig) []Regression {
	var regs []Regression
	for _, b := range base.Benchmarks {
		if cfg.Gate != nil && !cfg.Gate.MatchString(b.Name) {
			continue
		}
		n, ok := cur.Lookup(b.Name)
		if !ok {
			regs = append(regs, Regression{Name: b.Name, Metric: "missing"})
			continue
		}
		if !cfg.AllocsOnly && b.NsPerOp > 0 && n.NsPerOp > b.NsPerOp*(1+cfg.MaxNsRegress) {
			regs = append(regs, Regression{Name: b.Name, Metric: "ns/op", Base: b.NsPerOp, New: n.NsPerOp})
		}
		if n.AllocsPerOp > b.AllocsPerOp*(1+allocSlack) {
			regs = append(regs, Regression{Name: b.Name, Metric: "allocs/op", Base: b.AllocsPerOp, New: n.AllocsPerOp})
		}
	}
	return regs
}
