package perf

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/perf
cpu: whatever
BenchmarkWireEncode-8   	  755810	      1565 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimScheduleFire-8	 1000000	       120.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkMacroEngineCalendar-8	       1	 95000000 ns/op	10526315 events/sec	 4000000 B/op	      12 allocs/op
PASS
ok  	repro/internal/perf	3.2s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	enc, ok := rep.Lookup("BenchmarkWireEncode")
	if !ok {
		t.Fatal("BenchmarkWireEncode not found (CPU suffix not stripped?)")
	}
	if enc.Runs != 755810 || enc.NsPerOp != 1565 || enc.AllocsPerOp != 0 {
		t.Errorf("BenchmarkWireEncode parsed wrong: %+v", enc)
	}
	mac, _ := rep.Lookup("BenchmarkMacroEngineCalendar")
	if mac.Metrics["events/sec"] != 10526315 {
		t.Errorf("custom metric lost: %+v", mac.Metrics)
	}
	// Sorted by name.
	for i := 1; i < len(rep.Benchmarks); i++ {
		if rep.Benchmarks[i-1].Name > rep.Benchmarks[i].Name {
			t.Errorf("benchmarks not sorted: %q before %q",
				rep.Benchmarks[i-1].Name, rep.Benchmarks[i].Name)
		}
	}
}

func TestParseDuplicateNamesKeepBoth(t *testing.T) {
	in := "BenchmarkX-8 10 5 ns/op\nBenchmarkX-4 10 7 ns/op\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d, want 2", len(rep.Benchmarks))
	}
	if _, ok := rep.Lookup("BenchmarkX#2"); !ok {
		t.Error("duplicate not renamed to BenchmarkX#2")
	}
}

func TestBestCollapsesRepeats(t *testing.T) {
	in := "BenchmarkX-8 1000 50 ns/op 0 allocs/op\n" +
		"BenchmarkX-8 1000 30 ns/op 2000000 events/sec 1 allocs/op\n" +
		"BenchmarkX-8 1000 90 ns/op 0 allocs/op\n" +
		"BenchmarkY-8 1000 7 ns/op\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	best := rep.Best()
	if len(best.Benchmarks) != 2 {
		t.Fatalf("collapsed to %d benchmarks, want 2", len(best.Benchmarks))
	}
	x, ok := best.Lookup("BenchmarkX")
	if !ok {
		t.Fatal("BenchmarkX lost")
	}
	if x.NsPerOp != 30 {
		t.Errorf("ns/op = %g, want min 30", x.NsPerOp)
	}
	if x.AllocsPerOp != 1 {
		t.Errorf("allocs/op = %g, want max 1 (a run that allocates must not be hidden)", x.AllocsPerOp)
	}
	if x.Metrics["events/sec"] != 2000000 {
		t.Errorf("metrics not taken from the min-ns run: %+v", x.Metrics)
	}
	if y, _ := best.Lookup("BenchmarkY"); y.NsPerOp != 7 {
		t.Errorf("single-run benchmark changed: %+v", y)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d vs %d", len(back.Benchmarks), len(rep.Benchmarks))
	}
	for i := range back.Benchmarks {
		a, b := rep.Benchmarks[i], back.Benchmarks[i]
		if a.Name != b.Name || a.NsPerOp != b.NsPerOp || a.AllocsPerOp != b.AllocsPerOp {
			t.Errorf("benchmark %d changed in round trip: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadJSONRejectsWrongSchema(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"schema":"other/v9","benchmarks":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
}

func mkReport(ns, allocs float64) Report {
	return Report{Schema: Schema, Benchmarks: []Benchmark{
		{Name: "BenchmarkGated", NsPerOp: ns, AllocsPerOp: allocs},
		{Name: "BenchmarkFree", NsPerOp: 100, AllocsPerOp: 5},
	}}
}

func TestDiffNsRegression(t *testing.T) {
	gate := regexp.MustCompile("^BenchmarkGated$")
	base := mkReport(100, 0)

	if regs := Diff(base, mkReport(115, 0), DiffConfig{Gate: gate, MaxNsRegress: 0.20}); len(regs) != 0 {
		t.Errorf("15%% slowdown under a 20%% gate flagged: %v", regs)
	}
	regs := Diff(base, mkReport(130, 0), DiffConfig{Gate: gate, MaxNsRegress: 0.20})
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Errorf("30%% slowdown not flagged: %v", regs)
	}
	// Ungated benchmark may regress freely.
	cur := mkReport(100, 0)
	cur.Benchmarks[1].NsPerOp = 1e9
	if regs := Diff(base, cur, DiffConfig{Gate: gate, MaxNsRegress: 0.20}); len(regs) != 0 {
		t.Errorf("ungated benchmark flagged: %v", regs)
	}
}

func TestDiffAllocRegressionIsZeroTolerance(t *testing.T) {
	gate := regexp.MustCompile("^BenchmarkGated$")
	regs := Diff(mkReport(100, 0), mkReport(100, 1), DiffConfig{Gate: gate, MaxNsRegress: 0.20})
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Errorf("single alloc regression not flagged: %v", regs)
	}
	// AllocsOnly still enforces allocations but ignores time.
	regs = Diff(mkReport(100, 0), mkReport(500, 1), DiffConfig{Gate: gate, AllocsOnly: true})
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Errorf("AllocsOnly: %v", regs)
	}
	// 1 -> 2 allocs is a 100% regression, far past the proportional slack.
	regs = Diff(mkReport(100, 1), mkReport(100, 2), DiffConfig{Gate: gate})
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Errorf("1->2 allocs not flagged: %v", regs)
	}
}

func TestDiffAllocSlackForAllocatingBenchmarks(t *testing.T) {
	// Benchmarks that allocate by design wobble by ±1 alloc/op from
	// runtime internals; proportional slack absorbs that without opening
	// a hole at 0 or 1 allocs/op.
	gate := regexp.MustCompile("^BenchmarkGated$")
	if regs := Diff(mkReport(100, 84506), mkReport(100, 84507), DiffConfig{Gate: gate}); len(regs) != 0 {
		t.Errorf("single-alloc wobble at 84k allocs flagged: %v", regs)
	}
	regs := Diff(mkReport(100, 84506), mkReport(100, 85000), DiffConfig{Gate: gate})
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Errorf("0.6%% alloc growth not flagged: %v", regs)
	}
}

func TestDiffMissingGatedBenchmark(t *testing.T) {
	base := mkReport(100, 0)
	cur := Report{Schema: Schema}
	regs := Diff(base, cur, DiffConfig{Gate: regexp.MustCompile("^BenchmarkGated$")})
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Errorf("missing gated benchmark not flagged: %v", regs)
	}
}
