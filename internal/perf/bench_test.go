package perf

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// The micro benchmarks below cover every hot path the speed program
// optimized: codec encode/decode/stamp, gateway marking, pacer accounting,
// engine scheduling (both queue implementations), and packet transit
// through a link. `make bench-json` runs them at -benchtime=1000x and the
// Macro* pair at -benchtime=1x, folding the figures into BENCH_6.json;
// cmd/perfdiff gates CI on the result.

func benchHeader() wire.Header {
	return wire.Header{
		Type:      wire.TypeData,
		Color:     packet.Yellow,
		Flow:      7,
		Frame:     1234,
		Index:     9,
		Seq:       1 << 40,
		Timestamp: 1700000000 * int64(time.Second),
		Feedback:  packet.Feedback{RouterID: 3, Epoch: 55, Loss: 0.0625, Valid: true},
	}
}

func BenchmarkWireEncode(b *testing.B) {
	h := benchHeader()
	payload := make([]byte, 1000)
	buf := make([]byte, 0, wire.MaxDatagram)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.AppendDatagram(buf[:0], h, payload)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkWireDecode(b *testing.B) {
	dg, err := wire.EncodeDatagram(benchHeader(), make([]byte, 1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(dg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wire.DecodeDatagram(dg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireStampFeedback(b *testing.B) {
	dg, err := wire.EncodeDatagram(benchHeader(), make([]byte, 1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate losses so every other stamp actually rewrites the label
		// (same-label stamps return before patching the checksum).
		fb := packet.Feedback{RouterID: 9, Epoch: uint64(i), Loss: float64(i%2) * 0.5, Valid: true}
		if err := wire.StampFeedback(dg, fb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGatewayMark(b *testing.B) {
	g := wire.NewGateway(wire.GatewayConfig{
		RouterID: 1,
		Interval: 30 * time.Millisecond,
		Capacity: 4 * units.Mbps,
		MinLoss:  -0.5,
	})
	dg, err := wire.EncodeDatagram(benchHeader(), make([]byte, 1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Mark(dg)
	}
}

func BenchmarkPacerReserve(b *testing.B) {
	p := wire.NewPacer(10*units.Mbps, 64*1024)
	now := time.Unix(1700000000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Advance the clock enough to refill what one datagram spends, so
		// the benchmark stays on the no-wait fast path.
		now = now.Add(1200 * time.Microsecond)
		p.Reserve(1460, now)
	}
}

// BenchmarkSimScheduleFire measures one schedule→fire cycle through the
// pooled fire-and-forget path on the calendar queue — the engine's hot
// loop. Expect 0 allocs/op.
func BenchmarkSimScheduleFire(b *testing.B) {
	benchScheduleFire(b, false)
}

// BenchmarkSimHeapScheduleFire is the same cycle on the retained seed heap
// (still pooled), isolating the queue data structure cost.
func BenchmarkSimHeapScheduleFire(b *testing.B) {
	benchScheduleFire(b, true)
}

func benchScheduleFire(b *testing.B, useHeap bool) {
	eng := sim.NewEngine(1)
	if useHeap {
		eng.UseHeapQueue()
	}
	// Warm up outside the timed window: the gate runs this at a fixed
	// -benchtime=1000x (exact allocs/op), and 1000 cold iterations would
	// otherwise measure page faults and branch-predictor training instead
	// of the schedule→fire cycle.
	warm := 0
	var warmTick func()
	warmTick = func() {
		warm++
		if warm < 4096 {
			eng.ScheduleFunc(time.Microsecond, warmTick)
		}
	}
	eng.ScheduleFunc(0, warmTick)
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.ScheduleFunc(time.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.ScheduleFunc(0, tick)
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimScheduleCancel measures the handle path with immediate
// cancellation — the retransmit-timer pattern that stresses compaction.
func BenchmarkSimScheduleCancel(b *testing.B) {
	eng := sim.NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(time.Hour, func() {}).Cancel()
	}
	b.StopTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

type perfSink struct{ n int }

func (s *perfSink) Receive(p *packet.Packet) { s.n++ }

// BenchmarkNetsimTransit measures one packet's full life on a link:
// enqueue, serialize, propagate, deliver. Two engine events per op, zero
// allocations in steady state.
func BenchmarkNetsimTransit(b *testing.B) {
	eng := sim.NewEngine(1)
	sink := &perfSink{}
	l := netsim.NewLink(eng, "bench", units.Gbps, time.Microsecond, queue.NewDropTail(0, 0), sink)
	p := &packet.Packet{ID: 1, Size: 1000, Color: packet.Green}
	// Prime event free list and FIFO capacity.
	for i := 0; i < 16; i++ {
		l.Send(p)
	}
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(p)
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sink.n != b.N+16 {
		b.Fatalf("delivered %d packets, want %d", sink.n, b.N+16)
	}
}

// macroEvents is the macro workload size: one million events through a
// population of concurrent self-rescheduling flows, the shape of a full
// testbed run. macroFlows sets the pending-event set the queue must manage.
const (
	macroEvents = 1_000_000
	macroFlows  = 16384
)

// BenchmarkMacroEngineCalendar runs the macro workload on the optimized
// engine: calendar queue + pooled events. Run at -benchtime=1x.
func BenchmarkMacroEngineCalendar(b *testing.B) {
	benchEngineMacro(b, false)
}

// BenchmarkMacroEngineSeedHeap runs the identical workload the way the
// seed engine did it: binary heap, one heap-allocated Event per schedule.
// The events/sec ratio of this pair is the speedup the BENCH trajectory
// tracks.
func BenchmarkMacroEngineSeedHeap(b *testing.B) {
	benchEngineMacro(b, true)
}

func benchEngineMacro(b *testing.B, seedHeap bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(7)
		if seedHeap {
			eng.UseHeapQueue()
		}
		rng := eng.Rand()
		processed := 0
		var tick func()
		tick = func() {
			processed++
			if processed >= macroEvents {
				return
			}
			d := time.Duration(rng.Intn(5000)) * time.Microsecond
			if seedHeap {
				eng.Schedule(d, tick)
			} else {
				eng.ScheduleFunc(d, tick)
			}
		}
		for f := 0; f < macroFlows; f++ {
			if seedHeap {
				eng.Schedule(time.Duration(f)*time.Microsecond, tick)
			} else {
				eng.ScheduleFunc(time.Duration(f)*time.Microsecond, tick)
			}
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if got := int(eng.Processed()); got < macroEvents {
			b.Fatalf("processed %d events, want >= %d", got, macroEvents)
		}
	}
	b.ReportMetric(float64(macroEvents*b.N)/b.Elapsed().Seconds(), "events/sec")
}
