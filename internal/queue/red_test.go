package queue

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func TestREDNoDropsBelowMinThresh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewRED(REDConfig{MinThresh: 50, MaxThresh: 80, MaxP: 0.1, Weight: 0.5, LimitPkts: 100}, rng)
	for i := uint64(1); i <= 20; i++ {
		if !q.Enqueue(pkt(i, 100, packet.TCP)) {
			t.Fatalf("packet %d dropped below min threshold", i)
		}
	}
	if q.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0", q.Dropped)
	}
}

func TestREDHardLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewRED(REDConfig{MinThresh: 1000, MaxThresh: 2000, MaxP: 0.1, Weight: 0.002, LimitPkts: 10}, rng)
	for i := uint64(1); i <= 20; i++ {
		q.Enqueue(pkt(i, 100, packet.TCP))
	}
	if q.Len() != 10 {
		t.Errorf("Len = %d, want 10", q.Len())
	}
	if q.Dropped != 10 {
		t.Errorf("Dropped = %d, want 10", q.Dropped)
	}
}

// TestREDEarlyDropRate holds the queue in the linear drop region and
// verifies the realized drop probability is in the right range.
func TestREDEarlyDropRate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := REDConfig{MinThresh: 0, MaxThresh: 100, MaxP: 0.2, Weight: 1, LimitPkts: 1000}
	q := NewRED(cfg, rng)
	// Keep the instantaneous queue near 50: avg ≈ 50 → pb ≈ 0.1.
	for i := 0; i < 50; i++ {
		q.Enqueue(pkt(uint64(i), 100, packet.TCP))
	}
	drops, total := 0, 20000
	for i := 0; i < total; i++ {
		if !q.Enqueue(pkt(uint64(1000+i), 100, packet.TCP)) {
			drops++
		} else {
			q.Dequeue() // hold occupancy constant
		}
	}
	rate := float64(drops) / float64(total)
	if rate < 0.05 || rate > 0.25 {
		t.Errorf("early-drop rate = %.3f, want ~0.1 in [0.05, 0.25]", rate)
	}
}

func TestREDForceDropAboveMaxThresh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewRED(REDConfig{MinThresh: 5, MaxThresh: 10, MaxP: 0.1, Weight: 1, LimitPkts: 100}, rng)
	for i := uint64(0); i < 20; i++ {
		q.Enqueue(pkt(i, 100, packet.TCP))
	}
	// avg tracks the queue (weight 1); once avg >= 10, every arrival drops.
	before := q.Dropped
	for i := uint64(100); i < 110; i++ {
		if q.Enqueue(pkt(i, 100, packet.TCP)) {
			t.Fatalf("packet accepted with avg %.1f above max threshold", q.AvgQueue())
		}
	}
	if q.Dropped != before+10 {
		t.Errorf("Dropped = %d, want %d", q.Dropped, before+10)
	}
}

func TestREDProtectGreen(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewRED(REDConfig{MinThresh: 0, MaxThresh: 1, MaxP: 1, Weight: 1, LimitPkts: 10000}, rng)
	q.ProtectGreen = true
	// Fill past the max threshold so every droppable packet drops.
	for i := uint64(0); i < 10; i++ {
		q.Enqueue(pkt(i, 100, packet.TCP))
	}
	greens := 0
	for i := uint64(100); i < 150; i++ {
		if q.Enqueue(pkt(i, 100, packet.Green)) {
			greens++
		}
	}
	if greens != 50 {
		t.Errorf("accepted %d/50 green packets with ProtectGreen", greens)
	}
}

func TestDefaultREDConfig(t *testing.T) {
	cfg := DefaultREDConfig(100)
	if cfg.MinThresh != 25 || cfg.MaxThresh != 75 || cfg.LimitPkts != 100 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
}

func TestBernoulliDropperRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewBernoulliDropper(0.3, false, rng)
	total := 50000
	for i := 0; i < total; i++ {
		if q.Enqueue(pkt(uint64(i), 100, packet.Yellow)) {
			q.Dequeue()
		}
	}
	rate := q.LossRate()
	if rate < 0.28 || rate > 0.32 {
		t.Errorf("loss rate = %.4f, want ~0.30", rate)
	}
}

func TestBernoulliDropperProtectGreen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewBernoulliDropper(1.0, true, rng)
	if !q.Enqueue(pkt(1, 100, packet.Green)) {
		t.Error("green packet dropped with ProtectGreen at p=1")
	}
	if q.Enqueue(pkt(2, 100, packet.Yellow)) {
		t.Error("yellow packet survived p=1")
	}
}
