package queue

import (
	"fmt"

	"repro/internal/packet"
)

// WRRClass describes one class of a weighted round-robin scheduler: a
// queueing discipline, its link-share weight, and a classifier deciding
// which packets belong to it.
type WRRClass struct {
	Name     string
	Disc     Discipline
	Weight   float64
	Classify func(p *packet.Packet) bool
}

// WRR is a work-conserving weighted round-robin scheduler. The PELS router
// uses it with two classes — the PELS priority set and the Internet FIFO —
// to allocate a configured fraction of the outgoing link to each traffic
// type (paper §4.1, Fig. 4 left).
//
// The implementation uses virtual service times (served bytes normalized by
// weight): Dequeue serves the backlogged class with the smallest normalized
// service, which converges to weight-proportional byte shares for any
// packet size mix, like deficit round-robin but without quantum tuning.
type WRR struct {
	classes []*wrrClass
	// vnow is the scheduler's virtual time: the normalized service of the
	// most recently served class. A class returning from idle starts at
	// vnow so it can neither claim credit accumulated while idle nor be
	// starved by credit other classes accumulated in the meantime.
	vnow float64
}

type wrrClass struct {
	WRRClass
	vtime float64 // served bytes / weight
}

var _ Discipline = (*WRR)(nil)

// NewWRR builds a scheduler over the given classes. Weights must be
// positive; classes are matched in order, and packets matching no class are
// dropped (and counted against no class).
func NewWRR(classes ...WRRClass) (*WRR, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("queue: WRR needs at least one class")
	}
	w := &WRR{classes: make([]*wrrClass, 0, len(classes))}
	for _, c := range classes {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("queue: WRR class %q has non-positive weight %v", c.Name, c.Weight)
		}
		if c.Disc == nil {
			return nil, fmt.Errorf("queue: WRR class %q has nil discipline", c.Name)
		}
		if c.Classify == nil {
			return nil, fmt.Errorf("queue: WRR class %q has nil classifier", c.Name)
		}
		w.classes = append(w.classes, &wrrClass{WRRClass: c})
	}
	return w, nil
}

// MustNewWRR is NewWRR that panics on configuration errors; intended for
// experiment setup code with static configurations.
func MustNewWRR(classes ...WRRClass) *WRR {
	w, err := NewWRR(classes...)
	if err != nil {
		panic(err)
	}
	return w
}

// Enqueue routes the packet to the first matching class.
func (w *WRR) Enqueue(p *packet.Packet) bool {
	for _, c := range w.classes {
		if !c.Classify(p) {
			continue
		}
		wasEmpty := c.Disc.Len() == 0
		ok := c.Disc.Enqueue(p)
		if ok && wasEmpty && c.vtime < w.vnow {
			c.vtime = w.vnow
		}
		return ok
	}
	return false
}

// Dequeue serves the backlogged class with the smallest normalized service.
func (w *WRR) Dequeue() *packet.Packet {
	var best *wrrClass
	for _, c := range w.classes {
		if c.Disc.Len() == 0 {
			continue
		}
		if best == nil || c.vtime < best.vtime {
			best = c
		}
	}
	if best == nil {
		return nil
	}
	p := best.Disc.Dequeue()
	if p != nil {
		best.vtime += float64(p.Size) / best.Weight
		w.vnow = best.vtime
	}
	return p
}

// Len implements Discipline.
func (w *WRR) Len() int {
	n := 0
	for _, c := range w.classes {
		n += c.Disc.Len()
	}
	return n
}

// Bytes implements Discipline.
func (w *WRR) Bytes() int {
	n := 0
	for _, c := range w.classes {
		n += c.Disc.Bytes()
	}
	return n
}

// Class returns the discipline registered under name, or nil.
func (w *WRR) Class(name string) Discipline {
	for _, c := range w.classes {
		if c.Name == name {
			return c.Disc
		}
	}
	return nil
}
