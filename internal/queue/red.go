package queue

import (
	"math/rand"

	"repro/internal/packet"
)

// REDConfig parameterizes a Random Early Detection queue (Floyd & Jacobson
// 1993). The paper's best-effort analysis (§3.1) assumes routers that drop
// packets uniformly at random with exponential burst tails — exactly the
// behaviour RED is designed to produce — so RED is the drop model of the
// best-effort baseline.
type REDConfig struct {
	// MinThresh and MaxThresh are the average-queue thresholds in packets.
	MinThresh float64
	MaxThresh float64
	// MaxP is the drop probability at MaxThresh.
	MaxP float64
	// Weight is the EWMA weight for the average queue estimate.
	Weight float64
	// LimitPkts is the hard buffer size in packets.
	LimitPkts int
}

// DefaultREDConfig returns the classic "gentle" configuration scaled to a
// buffer of limitPkts packets.
func DefaultREDConfig(limitPkts int) REDConfig {
	return REDConfig{
		MinThresh: float64(limitPkts) * 0.25,
		MaxThresh: float64(limitPkts) * 0.75,
		MaxP:      0.1,
		Weight:    0.002,
		LimitPkts: limitPkts,
	}
}

// RED is a random-early-detection FIFO queue.
type RED struct {
	Counters

	cfg REDConfig
	rng *rand.Rand
	q   fifo

	avg   float64 // EWMA of queue length in packets
	count int     // packets since last early drop

	// ProtectGreen, when true, exempts green (base-layer) packets from
	// early drops. The paper's best-effort comparison "magically" protects
	// the base layer (§6.5); this switch implements that oracle.
	ProtectGreen bool
}

var _ Discipline = (*RED)(nil)

// NewRED returns a RED queue using rng for drop decisions.
func NewRED(cfg REDConfig, rng *rand.Rand) *RED {
	if cfg.LimitPkts <= 0 {
		cfg.LimitPkts = 1
	}
	if cfg.MaxThresh <= cfg.MinThresh {
		cfg.MaxThresh = cfg.MinThresh + 1
	}
	if cfg.Weight <= 0 || cfg.Weight > 1 {
		cfg.Weight = 0.002
	}
	return &RED{cfg: cfg, rng: rng, count: -1}
}

// Enqueue implements Discipline.
func (r *RED) Enqueue(p *packet.Packet) bool {
	r.RecordArrival(p)
	r.avg = (1-r.cfg.Weight)*r.avg + r.cfg.Weight*float64(r.q.len())

	if r.q.len() >= r.cfg.LimitPkts {
		r.RecordDrop(p)
		return false
	}
	if r.shouldEarlyDrop(p) {
		r.RecordDrop(p)
		return false
	}
	r.q.push(p)
	return true
}

func (r *RED) shouldEarlyDrop(p *packet.Packet) bool {
	if r.ProtectGreen && p.Color == packet.Green {
		return false
	}
	switch {
	case r.avg < r.cfg.MinThresh:
		r.count = -1
		return false
	case r.avg >= r.cfg.MaxThresh:
		r.count = 0
		return true
	default:
		r.count++
		pb := r.cfg.MaxP * (r.avg - r.cfg.MinThresh) / (r.cfg.MaxThresh - r.cfg.MinThresh)
		// Spread drops uniformly (Floyd's pa correction).
		pa := pb / (1 - float64(r.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if r.rng.Float64() < pa {
			r.count = 0
			return true
		}
		return false
	}
}

// Dequeue implements Discipline.
func (r *RED) Dequeue() *packet.Packet {
	p := r.q.pop()
	if p != nil {
		r.Dequeued++
	}
	return p
}

// Len implements Discipline.
func (r *RED) Len() int { return r.q.len() }

// Bytes implements Discipline.
func (r *RED) Bytes() int { return r.q.bytes }

// AvgQueue returns the current EWMA queue estimate (packets).
func (r *RED) AvgQueue() float64 { return r.avg }

// BernoulliDropper is an oracle discipline that drops each arriving packet
// independently with a fixed probability, matching the Bernoulli loss model
// of §3.1 exactly. Green packets are exempt when ProtectGreen is set. It is
// used in model-validation experiments (Table 1) where the loss process —
// not queue dynamics — is under study.
type BernoulliDropper struct {
	Counters

	P            float64
	ProtectGreen bool

	rng *rand.Rand
	q   fifo
}

var _ Discipline = (*BernoulliDropper)(nil)

// NewBernoulliDropper returns an oracle queue dropping with probability p.
func NewBernoulliDropper(p float64, protectGreen bool, rng *rand.Rand) *BernoulliDropper {
	return &BernoulliDropper{P: p, ProtectGreen: protectGreen, rng: rng}
}

// Enqueue implements Discipline.
func (b *BernoulliDropper) Enqueue(p *packet.Packet) bool {
	b.RecordArrival(p)
	if !(b.ProtectGreen && p.Color == packet.Green) && b.rng.Float64() < b.P {
		b.RecordDrop(p)
		return false
	}
	b.q.push(p)
	return true
}

// Dequeue implements Discipline.
func (b *BernoulliDropper) Dequeue() *packet.Packet {
	p := b.q.pop()
	if p != nil {
		b.Dequeued++
	}
	return p
}

// Len implements Discipline.
func (b *BernoulliDropper) Len() int { return b.q.len() }

// Bytes implements Discipline.
func (b *BernoulliDropper) Bytes() int { return b.q.bytes }
