// Package queue implements the queueing disciplines used by PELS routers
// and the best-effort baseline: drop-tail FIFO, RED (uniform random drop),
// a strict-priority set of N PELS layer queues (the paper's three colors
// by default), and weighted round-robin scheduling between the PELS
// aggregate and the Internet queue (paper §4.1, Fig. 4 left).
package queue

import (
	"repro/internal/obs"
	"repro/internal/packet"
)

// Discipline is a queueing discipline attached to an output link. Enqueue
// accepts or drops a packet; Dequeue picks the next packet to transmit.
type Discipline interface {
	// Enqueue offers p to the queue. It returns false if the packet was
	// dropped (buffer overflow or active drop decision).
	Enqueue(p *packet.Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil if
	// the discipline has nothing to send.
	Dequeue() *packet.Packet
	// Len returns the number of packets currently queued.
	Len() int
	// Bytes returns the number of bytes currently queued.
	Bytes() int
}

// Counters tracks arrival/drop statistics for a queue. Disciplines embed it
// so experiments can read loss rates per color (Fig. 7 right).
type Counters struct {
	Arrived      int64
	ArrivedBytes int64
	Dropped      int64
	DroppedBytes int64
	Dequeued     int64
}

// RecordArrival notes an arriving packet.
func (c *Counters) RecordArrival(p *packet.Packet) {
	c.Arrived++
	c.ArrivedBytes += int64(p.Size)
}

// RecordDrop notes a dropped packet.
func (c *Counters) RecordDrop(p *packet.Packet) {
	c.Dropped++
	c.DroppedBytes += int64(p.Size)
}

// LossRate returns the fraction of arrived packets that were dropped.
func (c *Counters) LossRate() float64 {
	if c.Arrived == 0 {
		return 0
	}
	return float64(c.Dropped) / float64(c.Arrived)
}

// Reset zeroes all counters (used for per-interval loss measurements).
func (c *Counters) Reset() { *c = Counters{} }

// Observe registers pull-style gauges for the counters in reg under
// prefix (prefix+"arrived", "arrived_bytes", "dropped", "dropped_bytes",
// "dequeued", "loss_rate"). Pull gauges read the live counters at
// snapshot time, so the hot enqueue/dequeue path stays untouched.
func (c *Counters) Observe(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+"arrived", func() float64 { return float64(c.Arrived) })
	reg.GaugeFunc(prefix+"arrived_bytes", func() float64 { return float64(c.ArrivedBytes) })
	reg.GaugeFunc(prefix+"dropped", func() float64 { return float64(c.Dropped) })
	reg.GaugeFunc(prefix+"dropped_bytes", func() float64 { return float64(c.DroppedBytes) })
	reg.GaugeFunc(prefix+"dequeued", func() float64 { return float64(c.Dequeued) })
	reg.GaugeFunc(prefix+"loss_rate", c.LossRate)
}

// fifo is a slice-backed packet FIFO with amortized O(1) operations.
type fifo struct {
	pkts  []*packet.Packet
	head  int
	bytes int
}

func (f *fifo) push(p *packet.Packet) {
	f.pkts = append(f.pkts, p)
	f.bytes += p.Size
}

func (f *fifo) pop() *packet.Packet {
	if f.head >= len(f.pkts) {
		return nil
	}
	p := f.pkts[f.head]
	f.pkts[f.head] = nil
	f.head++
	f.bytes -= p.Size
	// Reclaim space once the consumed prefix dominates.
	if f.head > 64 && f.head*2 >= len(f.pkts) {
		n := copy(f.pkts, f.pkts[f.head:])
		for i := n; i < len(f.pkts); i++ {
			f.pkts[i] = nil
		}
		f.pkts = f.pkts[:n]
		f.head = 0
	}
	return p
}

func (f *fifo) len() int { return len(f.pkts) - f.head }

func (f *fifo) peek() *packet.Packet {
	if f.head >= len(f.pkts) {
		return nil
	}
	return f.pkts[f.head]
}
