package queue

import (
	"repro/internal/packet"
)

// PriorityConfig sizes the per-layer buffers of the PELS queue set. Limits
// are in packets; 0 means unlimited.
//
// The three named fields size the paper's green/yellow/red triple. When
// LayerLimits is non-nil it overrides them and its length sets the number
// of priority layers (2..packet.MaxLayers); LayerLimits[0] sizes the base
// layer, the last entry the top layer.
type PriorityConfig struct {
	GreenLimit  int
	YellowLimit int
	RedLimit    int

	// LayerLimits generalizes the triple to N layers. Nil means the
	// classic 3-layer configuration built from the named fields.
	LayerLimits []int
}

// DefaultPriorityConfig returns the buffer sizing used by the paper-scale
// experiments: generous green/yellow buffers (their loss should be ~0 in
// normal operation) and a shallow red buffer. Red packets exist to be
// dropped during congestion; a deep red buffer only adds queueing delay to
// packets that are mostly discarded anyway (the paper's red delays top out
// around 400 ms).
func DefaultPriorityConfig() PriorityConfig {
	return PriorityConfig{GreenLimit: 100, YellowLimit: 100, RedLimit: 10}
}

// NLayerPriorityConfig returns an N-layer sizing that mirrors the default
// triple: a generous buffer for every protected layer and a shallow one for
// the top (probe) layer.
func NLayerPriorityConfig(n int) PriorityConfig {
	limits := make([]int, n)
	for i := range limits {
		limits[i] = 100
	}
	limits[n-1] = 10
	return PriorityConfig{LayerLimits: limits}
}

// limits resolves the per-layer packet limits for the configuration.
func (cfg PriorityConfig) limits() []int {
	if cfg.LayerLimits != nil {
		return cfg.LayerLimits
	}
	return []int{cfg.GreenLimit, cfg.YellowLimit, cfg.RedLimit}
}

// NumLayers returns the number of priority layers the configuration builds.
func (cfg PriorityConfig) NumLayers() int { return len(cfg.limits()) }

// EnhancementCapacity returns the summed packet limit of every layer above
// the base layer — the sizing the best-effort baseline uses for its single
// FIFO standing in for the enhancement buffers.
func (cfg PriorityConfig) EnhancementCapacity() int {
	limits := cfg.limits()
	total := 0
	for _, l := range limits[1:] {
		total += l
	}
	return total
}

// Priority is the strict-priority set of the PELS layer queues (paper
// §4.1, generalized from three colors to N ordered layers): layer 0 (the
// base layer, green) is always served before layer 1, layer 1 before
// layer 2, and so on. Starvation of the top queue is by design — top-layer
// packets exist to be lost or delayed during congestion, protecting the
// layers below.
type Priority struct {
	layers []*DropTail
}

var _ Discipline = (*Priority)(nil)

// NewPriority builds the layer queue set. It panics when the configuration
// resolves to fewer than 2 or more than packet.MaxLayers layers.
func NewPriority(cfg PriorityConfig) *Priority {
	limits := cfg.limits()
	if len(limits) < 2 || len(limits) > packet.MaxLayers {
		panic("queue: priority layer count out of range")
	}
	layers := make([]*DropTail, len(limits))
	for i, limit := range limits {
		layers[i] = NewDropTail(limit, 0)
	}
	return &Priority{layers: layers}
}

// NumLayers returns the number of priority layers.
func (pq *Priority) NumLayers() int { return len(pq.layers) }

// Layer returns the queue of priority layer i, or nil when i is out of
// range. Experiments use it to read per-layer loss and occupancy.
func (pq *Priority) Layer(i int) *DropTail {
	if i < 0 || i >= len(pq.layers) {
		return nil
	}
	return pq.layers[i]
}

// Enqueue places the packet in its layer queue. Non-PELS colors and layers
// beyond the configured count are rejected: the caller (the WRR scheduler)
// must route them elsewhere.
func (pq *Priority) Enqueue(p *packet.Packet) bool {
	q := pq.queueFor(p.Color)
	if q == nil {
		return false
	}
	return q.Enqueue(p)
}

// Dequeue serves the highest-priority non-empty layer queue.
func (pq *Priority) Dequeue() *packet.Packet {
	for _, q := range pq.layers {
		if p := q.Dequeue(); p != nil {
			return p
		}
	}
	return nil
}

// Len implements Discipline.
func (pq *Priority) Len() int {
	n := 0
	for _, q := range pq.layers {
		n += q.Len()
	}
	return n
}

// Bytes implements Discipline.
func (pq *Priority) Bytes() int {
	n := 0
	for _, q := range pq.layers {
		n += q.Bytes()
	}
	return n
}

// Queue returns the underlying per-layer queue for a PELS color, or nil
// for non-PELS colors and unconfigured layers.
func (pq *Priority) Queue(c packet.Color) *DropTail { return pq.queueFor(c) }

//pelsvet:noalloc
func (pq *Priority) queueFor(c packet.Color) *DropTail {
	layer, ok := c.Layer()
	if !ok || layer >= len(pq.layers) {
		return nil
	}
	return pq.layers[layer]
}

// ColorCounters returns a snapshot of the counters for color c (zero value
// for non-PELS colors).
func (pq *Priority) ColorCounters(c packet.Color) Counters {
	if q := pq.queueFor(c); q != nil {
		return q.Counters
	}
	return Counters{}
}
