package queue

import (
	"repro/internal/packet"
)

// PriorityConfig sizes the three per-color buffers of the PELS queue set.
// Limits are in packets; 0 means unlimited.
type PriorityConfig struct {
	GreenLimit  int
	YellowLimit int
	RedLimit    int
}

// DefaultPriorityConfig returns the buffer sizing used by the paper-scale
// experiments: generous green/yellow buffers (their loss should be ~0 in
// normal operation) and a shallow red buffer. Red packets exist to be
// dropped during congestion; a deep red buffer only adds queueing delay to
// packets that are mostly discarded anyway (the paper's red delays top out
// around 400 ms).
func DefaultPriorityConfig() PriorityConfig {
	return PriorityConfig{GreenLimit: 100, YellowLimit: 100, RedLimit: 10}
}

// Priority is the strict-priority set of the three PELS color queues
// (paper §4.1): green is always served before yellow, yellow before red.
// Starvation of the red queue is by design — red packets exist to be lost
// or delayed during congestion, protecting yellow and green.
type Priority struct {
	green  *DropTail
	yellow *DropTail
	red    *DropTail
}

var _ Discipline = (*Priority)(nil)

// NewPriority builds the color queue set.
func NewPriority(cfg PriorityConfig) *Priority {
	return &Priority{
		green:  NewDropTail(cfg.GreenLimit, 0),
		yellow: NewDropTail(cfg.YellowLimit, 0),
		red:    NewDropTail(cfg.RedLimit, 0),
	}
}

// Enqueue places the packet in its color queue. Non-PELS colors are
// rejected: the caller (the WRR scheduler) must route them elsewhere.
func (pq *Priority) Enqueue(p *packet.Packet) bool {
	q := pq.queueFor(p.Color)
	if q == nil {
		return false
	}
	return q.Enqueue(p)
}

// Dequeue serves the highest-priority non-empty color queue.
func (pq *Priority) Dequeue() *packet.Packet {
	if p := pq.green.Dequeue(); p != nil {
		return p
	}
	if p := pq.yellow.Dequeue(); p != nil {
		return p
	}
	return pq.red.Dequeue()
}

// Len implements Discipline.
func (pq *Priority) Len() int {
	return pq.green.Len() + pq.yellow.Len() + pq.red.Len()
}

// Bytes implements Discipline.
func (pq *Priority) Bytes() int {
	return pq.green.Bytes() + pq.yellow.Bytes() + pq.red.Bytes()
}

// Queue returns the underlying per-color queue, or nil for non-PELS colors.
// Experiments use it to read per-color loss and occupancy.
func (pq *Priority) Queue(c packet.Color) *DropTail { return pq.queueFor(c) }

func (pq *Priority) queueFor(c packet.Color) *DropTail {
	switch c {
	case packet.Green:
		return pq.green
	case packet.Yellow:
		return pq.yellow
	case packet.Red:
		return pq.red
	default:
		return nil
	}
}

// ColorCounters returns a snapshot of the counters for color c (zero value
// for non-PELS colors).
func (pq *Priority) ColorCounters(c packet.Color) Counters {
	if q := pq.queueFor(c); q != nil {
		return q.Counters
	}
	return Counters{}
}
