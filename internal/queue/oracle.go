package queue

import (
	"math/rand"

	"repro/internal/packet"
)

// OracleFIFO is the best-effort baseline queue of §6.5: a bounded FIFO that
// drops each arriving non-green packet with a probability supplied by the
// loss oracle (typically the router's current feedback loss), producing the
// independent Bernoulli loss pattern analyzed in §3.1. Green (base-layer)
// packets are never early-dropped — the paper's baseline "magically"
// protects the base layer to keep best-effort streaming viable at all.
// The oracle's loss target is measured over ALL video arrivals (the router
// computes p = (R−C)/R with R including the protected base layer), but only
// non-green packets may be dropped. The queue therefore scales the per-
// packet drop probability by the inverse of the droppable traffic share, so
// that realized drops match the target and no standing queue builds up
// (which would otherwise add feedback delay and destabilize the congestion
// control loop).
type OracleFIFO struct {
	Counters

	limitPkts int
	loss      func() float64
	rng       *rand.Rand
	q         fifo

	// greenShare is an EWMA of the byte fraction of protected (green)
	// arrivals.
	greenShare float64
}

var _ Discipline = (*OracleFIFO)(nil)

// NewOracleFIFO builds the oracle queue. loss is sampled per arrival and
// clamped to [0, 1]; limitPkts bounds the buffer (0 = unlimited).
func NewOracleFIFO(limitPkts int, loss func() float64, rng *rand.Rand) *OracleFIFO {
	if loss == nil {
		loss = func() float64 { return 0 }
	}
	return &OracleFIFO{limitPkts: limitPkts, loss: loss, rng: rng}
}

// ewmaWeight controls how quickly the green-share estimate adapts; at one
// packet per update, 1/2000 averages over roughly a second of paper-scale
// traffic.
const ewmaWeight = 1.0 / 2000

// Enqueue implements Discipline.
func (o *OracleFIFO) Enqueue(p *packet.Packet) bool {
	o.RecordArrival(p)
	isGreen := p.Color == packet.Green
	g := 0.0
	if isGreen {
		g = 1
	}
	o.greenShare += ewmaWeight * (g - o.greenShare)
	if o.limitPkts > 0 && o.q.len() >= o.limitPkts {
		o.RecordDrop(p)
		return false
	}
	if !isGreen {
		pr := o.loss()
		if share := 1 - o.greenShare; share > 0.05 {
			pr /= share
		}
		if pr > 1 {
			pr = 1
		}
		if pr > 0 && o.rng.Float64() < pr {
			o.RecordDrop(p)
			return false
		}
	}
	o.q.push(p)
	return true
}

// GreenShare returns the current estimate of the protected traffic share.
func (o *OracleFIFO) GreenShare() float64 { return o.greenShare }

// Dequeue implements Discipline.
func (o *OracleFIFO) Dequeue() *packet.Packet {
	p := o.q.pop()
	if p != nil {
		o.Dequeued++
	}
	return p
}

// Len implements Discipline.
func (o *OracleFIFO) Len() int { return o.q.len() }

// Bytes implements Discipline.
func (o *OracleFIFO) Bytes() int { return o.q.bytes }
