package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func TestPriorityStrictOrdering(t *testing.T) {
	pq := NewPriority(PriorityConfig{})
	pq.Enqueue(pkt(1, 100, packet.Red))
	pq.Enqueue(pkt(2, 100, packet.Yellow))
	pq.Enqueue(pkt(3, 100, packet.Green))
	pq.Enqueue(pkt(4, 100, packet.Green))
	pq.Enqueue(pkt(5, 100, packet.Red))

	var order []uint64
	for p := pq.Dequeue(); p != nil; p = pq.Dequeue() {
		order = append(order, p.ID)
	}
	want := []uint64{3, 4, 2, 1, 5}
	if len(order) != len(want) {
		t.Fatalf("dequeued %d packets, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("position %d: got packet %d, want %d", i, order[i], want[i])
		}
	}
}

func TestPriorityGreenNeverWaitsBehindLower(t *testing.T) {
	pq := NewPriority(PriorityConfig{})
	for i := uint64(0); i < 50; i++ {
		pq.Enqueue(pkt(i, 100, packet.Red))
	}
	pq.Enqueue(pkt(100, 100, packet.Green))
	if p := pq.Dequeue(); p == nil || p.Color != packet.Green {
		t.Errorf("first dequeue = %v, want the green packet", p)
	}
}

func TestPriorityRejectsNonPELSColors(t *testing.T) {
	pq := NewPriority(PriorityConfig{})
	for _, c := range []packet.Color{packet.TCP, packet.BestEffort, packet.ACK} {
		if pq.Enqueue(pkt(1, 100, c)) {
			t.Errorf("priority set accepted %v packet", c)
		}
	}
}

func TestPriorityPerColorLimits(t *testing.T) {
	pq := NewPriority(PriorityConfig{GreenLimit: 2, YellowLimit: 3, RedLimit: 1})
	colors := []struct {
		c     packet.Color
		n     int
		limit int
	}{
		{packet.Green, 5, 2},
		{packet.Yellow, 5, 3},
		{packet.Red, 5, 1},
	}
	for _, tc := range colors {
		for i := 0; i < tc.n; i++ {
			pq.Enqueue(pkt(uint64(i), 100, tc.c))
		}
		q := pq.Queue(tc.c)
		if q.Len() != tc.limit {
			t.Errorf("%v queue len = %d, want %d", tc.c, q.Len(), tc.limit)
		}
		if int(q.Dropped) != tc.n-tc.limit {
			t.Errorf("%v drops = %d, want %d", tc.c, q.Dropped, tc.n-tc.limit)
		}
	}
}

func TestPriorityLenAndBytes(t *testing.T) {
	pq := NewPriority(PriorityConfig{})
	pq.Enqueue(pkt(1, 100, packet.Green))
	pq.Enqueue(pkt(2, 200, packet.Yellow))
	pq.Enqueue(pkt(3, 300, packet.Red))
	if pq.Len() != 3 {
		t.Errorf("Len = %d, want 3", pq.Len())
	}
	if pq.Bytes() != 600 {
		t.Errorf("Bytes = %d, want 600", pq.Bytes())
	}
}

func TestPriorityQueueAccessor(t *testing.T) {
	pq := NewPriority(DefaultPriorityConfig())
	if pq.Queue(packet.Green) == nil || pq.Queue(packet.Yellow) == nil || pq.Queue(packet.Red) == nil {
		t.Error("color queue accessor returned nil for a PELS color")
	}
	if pq.Queue(packet.TCP) != nil {
		t.Error("color queue accessor returned a queue for TCP")
	}
	if c := pq.ColorCounters(packet.TCP); c != (Counters{}) {
		t.Errorf("ColorCounters(TCP) = %+v, want zero", c)
	}
}

// TestPriorityDequeueProperty: whatever the arrival pattern, a dequeued
// packet's color class never has a higher-priority class non-empty at the
// moment of service.
func TestPriorityDequeueProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		pq := NewPriority(PriorityConfig{GreenLimit: 10, YellowLimit: 10, RedLimit: 10})
		var id uint64
		for _, op := range ops {
			switch op % 4 {
			case 0:
				id++
				pq.Enqueue(pkt(id, 1, packet.Green))
			case 1:
				id++
				pq.Enqueue(pkt(id, 1, packet.Yellow))
			case 2:
				id++
				pq.Enqueue(pkt(id, 1, packet.Red))
			case 3:
				gBefore := pq.Queue(packet.Green).Len()
				yBefore := pq.Queue(packet.Yellow).Len()
				p := pq.Dequeue()
				if p == nil {
					continue
				}
				switch p.Color {
				case packet.Yellow:
					if gBefore > 0 {
						return false
					}
				case packet.Red:
					if gBefore > 0 || yBefore > 0 {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
