package queue

import (
	"repro/internal/packet"
)

// DropTail is a FIFO queue bounded by a packet count and/or byte count that
// drops arriving packets when full. A limit of 0 means unlimited in that
// dimension. It models the plain Internet queue of the PELS router
// (paper Fig. 4 left) and the per-color buffers inside the priority set.
type DropTail struct {
	Counters

	limitPkts  int
	limitBytes int
	q          fifo

	// OnDrop, if non-nil, is invoked for every dropped packet (used by
	// per-color loss accounting in experiments).
	OnDrop func(p *packet.Packet)
}

var _ Discipline = (*DropTail)(nil)

// NewDropTail returns a FIFO bounded to limitPkts packets and limitBytes
// bytes; either limit may be 0 for unlimited.
func NewDropTail(limitPkts, limitBytes int) *DropTail {
	return &DropTail{limitPkts: limitPkts, limitBytes: limitBytes}
}

// Enqueue implements Discipline.
func (d *DropTail) Enqueue(p *packet.Packet) bool {
	d.RecordArrival(p)
	if d.full(p) {
		d.drop(p)
		return false
	}
	d.q.push(p)
	return true
}

// Dequeue implements Discipline.
func (d *DropTail) Dequeue() *packet.Packet {
	p := d.q.pop()
	if p != nil {
		d.Dequeued++
	}
	return p
}

// Peek returns the head-of-line packet without removing it.
func (d *DropTail) Peek() *packet.Packet { return d.q.peek() }

// Len implements Discipline.
func (d *DropTail) Len() int { return d.q.len() }

// Bytes implements Discipline.
func (d *DropTail) Bytes() int { return d.q.bytes }

func (d *DropTail) full(p *packet.Packet) bool {
	if d.limitPkts > 0 && d.q.len() >= d.limitPkts {
		return true
	}
	if d.limitBytes > 0 && d.q.bytes+p.Size > d.limitBytes {
		return true
	}
	return false
}

func (d *DropTail) drop(p *packet.Packet) {
	d.RecordDrop(p)
	if d.OnDrop != nil {
		d.OnDrop(p)
	}
}
