package queue

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func TestOracleFIFONeverDropsGreen(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewOracleFIFO(0, func() float64 { return 1 }, rng)
	for i := uint64(0); i < 100; i++ {
		if !q.Enqueue(pkt(i, 100, packet.Green)) {
			t.Fatal("green packet dropped by oracle")
		}
	}
}

func TestOracleFIFODropRateTracksOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := NewOracleFIFO(0, func() float64 { return 0.2 }, rng)
	total := 50000
	drops := 0
	for i := 0; i < total; i++ {
		if !q.Enqueue(pkt(uint64(i), 100, packet.BestEffort)) {
			drops++
		} else {
			q.Dequeue()
		}
	}
	rate := float64(drops) / float64(total)
	// No green traffic: the compensation divisor is 1, so the realized
	// rate equals the oracle value.
	if rate < 0.18 || rate > 0.22 {
		t.Errorf("drop rate = %.4f, want ~0.20", rate)
	}
}

// TestOracleFIFOCompensation verifies that with a protected green share g,
// total realized drops still match the oracle's target loss measured over
// ALL arrivals: enhancement packets are dropped with probability p/(1−g).
func TestOracleFIFOCompensation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const target = 0.1
	q := NewOracleFIFO(0, func() float64 { return target }, rng)
	total := 200000
	drops := 0
	for i := 0; i < total; i++ {
		var p *packet.Packet
		if i%5 == 0 { // 20% green share
			p = pkt(uint64(i), 100, packet.Green)
		} else {
			p = pkt(uint64(i), 100, packet.BestEffort)
		}
		if !q.Enqueue(p) {
			drops++
		} else {
			q.Dequeue()
		}
	}
	rate := float64(drops) / float64(total)
	if rate < 0.09 || rate > 0.11 {
		t.Errorf("total drop rate = %.4f, want ~%.2f despite 20%% protected share", rate, target)
	}
	if gs := q.GreenShare(); gs < 0.17 || gs > 0.23 {
		t.Errorf("green share estimate = %.3f, want ~0.20", gs)
	}
}

func TestOracleFIFOBufferLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := NewOracleFIFO(5, func() float64 { return 0 }, rng)
	for i := uint64(0); i < 10; i++ {
		q.Enqueue(pkt(i, 100, packet.Green))
	}
	if q.Len() != 5 {
		t.Errorf("Len = %d, want 5", q.Len())
	}
	if q.Dropped != 5 {
		t.Errorf("Dropped = %d, want 5 (tail drops even for green)", q.Dropped)
	}
}

func TestOracleFIFONilLossFunc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := NewOracleFIFO(0, nil, rng)
	for i := uint64(0); i < 100; i++ {
		if !q.Enqueue(pkt(i, 100, packet.BestEffort)) {
			t.Fatal("packet dropped with nil (zero) loss oracle")
		}
	}
}

func TestOracleFIFOFIFOOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := NewOracleFIFO(0, func() float64 { return 0 }, rng)
	for i := uint64(1); i <= 5; i++ {
		q.Enqueue(pkt(i, 100, packet.Green))
	}
	for i := uint64(1); i <= 5; i++ {
		if p := q.Dequeue(); p == nil || p.ID != i {
			t.Fatalf("dequeue = %v, want id %d", p, i)
		}
	}
}
