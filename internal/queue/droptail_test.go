package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func pkt(id uint64, size int, c packet.Color) *packet.Packet {
	return &packet.Packet{ID: id, Size: size, Color: c}
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := NewDropTail(0, 0)
	for i := uint64(1); i <= 10; i++ {
		if !q.Enqueue(pkt(i, 100, packet.TCP)) {
			t.Fatalf("unbounded queue dropped packet %d", i)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		p := q.Dequeue()
		if p == nil || p.ID != i {
			t.Fatalf("dequeue %d = %v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Error("empty queue returned a packet")
	}
}

func TestDropTailPacketLimit(t *testing.T) {
	q := NewDropTail(3, 0)
	for i := uint64(1); i <= 5; i++ {
		q.Enqueue(pkt(i, 100, packet.TCP))
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	if q.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", q.Dropped)
	}
	if q.Arrived != 5 {
		t.Errorf("Arrived = %d, want 5", q.Arrived)
	}
	if got := q.LossRate(); got != 0.4 {
		t.Errorf("LossRate = %v, want 0.4", got)
	}
}

func TestDropTailByteLimit(t *testing.T) {
	q := NewDropTail(0, 250)
	if !q.Enqueue(pkt(1, 100, packet.TCP)) {
		t.Fatal("first packet dropped")
	}
	if !q.Enqueue(pkt(2, 100, packet.TCP)) {
		t.Fatal("second packet dropped")
	}
	if q.Enqueue(pkt(3, 100, packet.TCP)) {
		t.Error("packet exceeding byte limit accepted")
	}
	if q.Bytes() != 200 {
		t.Errorf("Bytes = %d, want 200", q.Bytes())
	}
}

func TestDropTailOnDropHook(t *testing.T) {
	q := NewDropTail(1, 0)
	var dropped []uint64
	q.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p.ID) }
	q.Enqueue(pkt(1, 100, packet.TCP))
	q.Enqueue(pkt(2, 100, packet.TCP))
	q.Enqueue(pkt(3, 100, packet.TCP))
	if len(dropped) != 2 || dropped[0] != 2 || dropped[1] != 3 {
		t.Errorf("dropped = %v, want [2 3]", dropped)
	}
}

func TestDropTailPeek(t *testing.T) {
	q := NewDropTail(0, 0)
	if q.Peek() != nil {
		t.Error("Peek on empty queue != nil")
	}
	q.Enqueue(pkt(1, 100, packet.TCP))
	q.Enqueue(pkt(2, 100, packet.TCP))
	if p := q.Peek(); p == nil || p.ID != 1 {
		t.Errorf("Peek = %v, want packet 1", p)
	}
	if q.Len() != 2 {
		t.Error("Peek consumed a packet")
	}
}

func TestDropTailCountersReset(t *testing.T) {
	q := NewDropTail(1, 0)
	q.Enqueue(pkt(1, 100, packet.TCP))
	q.Enqueue(pkt(2, 100, packet.TCP))
	q.Counters.Reset()
	if q.Arrived != 0 || q.Dropped != 0 {
		t.Errorf("counters not reset: %+v", q.Counters)
	}
}

// TestFIFOCompaction pushes and pops enough packets to trigger the internal
// slice compaction and verifies ordering and byte accounting survive it.
func TestFIFOCompaction(t *testing.T) {
	q := NewDropTail(0, 0)
	next := uint64(1)
	expect := uint64(1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 37; i++ {
			q.Enqueue(pkt(next, 10, packet.TCP))
			next++
		}
		for i := 0; i < 29; i++ {
			p := q.Dequeue()
			if p == nil || p.ID != expect {
				t.Fatalf("round %d: dequeue = %v, want id %d", round, p, expect)
			}
			expect++
		}
		if q.Bytes() != q.Len()*10 {
			t.Fatalf("round %d: bytes %d != len*10 %d", round, q.Bytes(), q.Len()*10)
		}
	}
	for q.Len() > 0 {
		p := q.Dequeue()
		if p.ID != expect {
			t.Fatalf("drain: got %d, want %d", p.ID, expect)
		}
		expect++
	}
}

// TestDropTailInvariants checks conservation with random operations:
// arrived = dropped + dequeued + queued.
func TestDropTailInvariants(t *testing.T) {
	f := func(ops []bool, limit uint8) bool {
		q := NewDropTail(int(limit%20)+1, 0)
		var id uint64
		for _, enq := range ops {
			if enq {
				id++
				q.Enqueue(pkt(id, 1, packet.TCP))
			} else {
				q.Dequeue()
			}
		}
		return q.Arrived == q.Dropped+q.Dequeued+int64(q.Len())
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDropTailCombinedLimits(t *testing.T) {
	// Packet limit 3 AND byte limit 250: whichever is hit first drops.
	q := NewDropTail(3, 250)
	if !q.Enqueue(pkt(1, 100, packet.TCP)) || !q.Enqueue(pkt(2, 100, packet.TCP)) {
		t.Fatal("first two packets dropped")
	}
	if q.Enqueue(pkt(3, 100, packet.TCP)) {
		t.Error("byte limit not enforced before packet limit")
	}
	if !q.Enqueue(pkt(4, 50, packet.TCP)) {
		t.Error("packet fitting in bytes rejected")
	}
	if q.Enqueue(pkt(5, 1, packet.TCP)) {
		t.Error("packet limit not enforced")
	}
}
