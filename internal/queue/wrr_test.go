package queue

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func twoClassWRR(t *testing.T, w1, w2 float64) (*WRR, *DropTail, *DropTail) {
	t.Helper()
	a := NewDropTail(0, 0)
	b := NewDropTail(0, 0)
	w, err := NewWRR(
		WRRClass{Name: "pels", Disc: a, Weight: w1, Classify: func(p *packet.Packet) bool { return p.Color.IsPELS() }},
		WRRClass{Name: "internet", Disc: b, Weight: w2, Classify: func(p *packet.Packet) bool { return true }},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w, a, b
}

func TestWRRClassification(t *testing.T) {
	w, a, b := twoClassWRR(t, 1, 1)
	w.Enqueue(pkt(1, 100, packet.Green))
	w.Enqueue(pkt(2, 100, packet.TCP))
	w.Enqueue(pkt(3, 100, packet.Yellow))
	if a.Len() != 2 || b.Len() != 1 {
		t.Errorf("class lengths = %d/%d, want 2/1", a.Len(), b.Len())
	}
}

func TestWRREqualWeightsAlternate(t *testing.T) {
	w, _, _ := twoClassWRR(t, 1, 1)
	for i := uint64(0); i < 10; i++ {
		w.Enqueue(pkt(i, 100, packet.Green))
		w.Enqueue(pkt(100+i, 100, packet.TCP))
	}
	counts := map[packet.Color]int{}
	for i := 0; i < 10; i++ {
		p := w.Dequeue()
		counts[p.Color]++
	}
	if counts[packet.Green] != 5 || counts[packet.TCP] != 5 {
		t.Errorf("after 10 dequeues: %v, want 5/5", counts)
	}
}

func TestWRRWeightedShares(t *testing.T) {
	w, _, _ := twoClassWRR(t, 3, 1)
	for i := uint64(0); i < 400; i++ {
		w.Enqueue(pkt(i, 100, packet.Green))
		w.Enqueue(pkt(1000+i, 100, packet.TCP))
	}
	counts := map[packet.Color]int{}
	for i := 0; i < 200; i++ {
		counts[w.Dequeue().Color]++
	}
	if counts[packet.Green] != 150 || counts[packet.TCP] != 50 {
		t.Errorf("3:1 shares over 200 dequeues = %v, want 150/50", counts)
	}
}

func TestWRRWeightedSharesByBytes(t *testing.T) {
	// Unequal packet sizes: fairness must hold in bytes, not packets.
	a := NewDropTail(0, 0)
	b := NewDropTail(0, 0)
	w := MustNewWRR(
		WRRClass{Name: "small", Disc: a, Weight: 1, Classify: func(p *packet.Packet) bool { return p.Color == packet.Green }},
		WRRClass{Name: "big", Disc: b, Weight: 1, Classify: func(p *packet.Packet) bool { return true }},
	)
	for i := uint64(0); i < 4000; i++ {
		w.Enqueue(pkt(i, 100, packet.Green))     // small packets
		w.Enqueue(pkt(10000+i, 500, packet.TCP)) // big packets
	}
	bytes := map[packet.Color]int{}
	for i := 0; i < 1200; i++ {
		p := w.Dequeue()
		bytes[p.Color] += p.Size
	}
	total := bytes[packet.Green] + bytes[packet.TCP]
	share := float64(bytes[packet.Green]) / float64(total)
	if share < 0.45 || share > 0.55 {
		t.Errorf("green byte share = %.3f, want ~0.5", share)
	}
}

func TestWRRWorkConserving(t *testing.T) {
	w, _, _ := twoClassWRR(t, 1, 1)
	// Only the internet class is backlogged; it must get the whole link.
	for i := uint64(0); i < 10; i++ {
		w.Enqueue(pkt(i, 100, packet.TCP))
	}
	for i := 0; i < 10; i++ {
		if p := w.Dequeue(); p == nil || p.Color != packet.TCP {
			t.Fatalf("dequeue %d = %v, want TCP packet", i, p)
		}
	}
}

func TestWRRIdleClassDoesNotAccumulateCredit(t *testing.T) {
	w, _, _ := twoClassWRR(t, 1, 1)
	// Serve 100 internet packets while PELS is idle.
	for i := uint64(0); i < 100; i++ {
		w.Enqueue(pkt(i, 100, packet.TCP))
		w.Dequeue()
	}
	// Now both classes backlogged: PELS must NOT get a 100-packet burst.
	for i := uint64(0); i < 50; i++ {
		w.Enqueue(pkt(200+i, 100, packet.Green))
		w.Enqueue(pkt(300+i, 100, packet.TCP))
	}
	counts := map[packet.Color]int{}
	for i := 0; i < 40; i++ {
		counts[w.Dequeue().Color]++
	}
	if counts[packet.Green] > 25 {
		t.Errorf("returning class burst: got %d/40 green, want ~20", counts[packet.Green])
	}
}

func TestWRRDropsUnmatchedPackets(t *testing.T) {
	a := NewDropTail(0, 0)
	w := MustNewWRR(WRRClass{
		Name: "only-green", Disc: a, Weight: 1,
		Classify: func(p *packet.Packet) bool { return p.Color == packet.Green },
	})
	if w.Enqueue(pkt(1, 100, packet.TCP)) {
		t.Error("unmatched packet accepted")
	}
	if !w.Enqueue(pkt(2, 100, packet.Green)) {
		t.Error("matched packet rejected")
	}
}

func TestWRRConfigErrors(t *testing.T) {
	d := NewDropTail(0, 0)
	classify := func(p *packet.Packet) bool { return true }
	cases := map[string][]WRRClass{
		"no classes":   {},
		"zero weight":  {{Name: "x", Disc: d, Weight: 0, Classify: classify}},
		"nil disc":     {{Name: "x", Disc: nil, Weight: 1, Classify: classify}},
		"nil classify": {{Name: "x", Disc: d, Weight: 1, Classify: nil}},
	}
	for name, classes := range cases {
		if _, err := NewWRR(classes...); err == nil {
			t.Errorf("NewWRR(%s) succeeded, want error", name)
		}
	}
}

func TestWRRClassAccessor(t *testing.T) {
	w, a, _ := twoClassWRR(t, 1, 1)
	if got := w.Class("pels"); got != Discipline(a) {
		t.Error("Class(pels) returned wrong discipline")
	}
	if w.Class("nope") != nil {
		t.Error("Class(nope) != nil")
	}
}

func TestWRRLenBytes(t *testing.T) {
	w, _, _ := twoClassWRR(t, 1, 1)
	w.Enqueue(pkt(1, 100, packet.Green))
	w.Enqueue(pkt(2, 300, packet.TCP))
	if w.Len() != 2 || w.Bytes() != 400 {
		t.Errorf("Len/Bytes = %d/%d, want 2/400", w.Len(), w.Bytes())
	}
}

// TestWRRLongRunShares drives random arrivals through a 2:1 scheduler and
// verifies long-run byte shares under continuous backlog.
func TestWRRLongRunShares(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w, _, _ := twoClassWRR(t, 2, 1)
	served := map[packet.Color]int{}
	var id uint64
	refill := func() {
		for i := 0; i < 20; i++ {
			id++
			if rng.Intn(2) == 0 {
				w.Enqueue(pkt(id, 100+rng.Intn(400), packet.Yellow))
			} else {
				w.Enqueue(pkt(id, 100+rng.Intn(400), packet.TCP))
			}
		}
	}
	for round := 0; round < 500; round++ {
		refill()
		for i := 0; i < 10; i++ {
			if p := w.Dequeue(); p != nil {
				served[p.Color] += p.Size
			}
		}
	}
	total := served[packet.Yellow] + served[packet.TCP]
	share := float64(served[packet.Yellow]) / float64(total)
	if share < 0.62 || share > 0.71 {
		t.Errorf("2:1 long-run byte share = %.3f, want ~0.667", share)
	}
}
