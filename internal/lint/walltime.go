package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs names the packages (by final import-path segment) that
// form the deterministic simulation core: everything inside them must be a
// pure function of the simulation seed. Only internal/wire and the cmd/
// binaries may touch the wall clock freely; they sit outside this set.
// internal/obs is included: it serves both sides, so its call paths must
// never read the clock themselves — callers pass every timestamp in (sim
// time or a wall-clock offset). internal/runner and internal/perf are
// included too: the runner's deadline clocks are the one sanctioned
// exception (each carries a justifying //pelsvet:allow), and perf must
// compute from parsed benchmark records, never from live timing.
var deterministicPkgs = map[string]bool{
	"sim":          true,
	"netsim":       true,
	"queue":        true,
	"aqm":          true,
	"cc":           true,
	"pels":         true,
	"fgs":          true,
	"crosstraffic": true,
	"tcp":          true,
	"video":        true,
	"stats":        true,
	"obs":          true,
	"fault":        true,
	// session is walltime-clean by construction: every instant arrives as
	// an argument or through an injected Clock (wire.SystemClock in
	// production), so the wheel/table/batcher core is testable on a
	// virtual clock.
	"session": true,
	// perf post-processes benchmark output: its numbers must come from the
	// parsed records, never from a live clock.
	"perf": true,
	// runner hosts the worker pool; its wall-clock uses (job duration
	// metadata, per-job timeout timers) are individually justified with
	// //pelsvet:allow — anything new must justify itself the same way.
	"runner": true,
}

// walltimeBanned lists the package time functions that read or wait on the
// wall clock. Pure time arithmetic (time.Duration values, constants like
// time.Millisecond, ParseDuration) remains allowed: the simulator's virtual
// clock is itself a time.Duration.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallTime forbids wall-clock access inside the deterministic simulation
// packages. A run of the simulator must be a pure function of its seed; a
// single time.Now() in the event loop destroys bit-reproducibility of every
// figure and table in the paper reproduction.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Sleep/After/Since and timer constructors in the " +
		"deterministic simulation packages (sim, netsim, queue, aqm, cc, pels, " +
		"fgs, crosstraffic, tcp, video, stats, obs, fault, session, perf, " +
		"runner); only internal/wire and cmd/ may touch the wall clock",
	Run: runWallTime,
}

func runWallTime(pass *Pass) {
	if !deterministicPkgs[pathTail(pass.Pkg.Path())] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Methods on time.Time (t.After, t.Sub, ...) are pure value
			// arithmetic; only the package-level functions read the clock.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if walltimeBanned[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock inside deterministic package %q; use the sim.Engine virtual clock",
					fn.Name(), pass.Pkg.Name())
			}
			return true
		})
	}
}
