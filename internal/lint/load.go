package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// goList runs `go list -deps -export -json` for the given patterns in dir
// and decodes the stream of package objects. -export makes the go tool
// write export data for every package in the dependency graph into the
// build cache, which is what lets the type checker resolve imports without
// re-typechecking the world from source.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	// -e keeps the listing alive when a package is broken: the broken
	// package simply lists without export data, its parse/typecheck error
	// surfaces per package in checkPackage, and every healthy package is
	// still analyzed (Runner.Run returns partial diagnostics + the errors).
	args := []string{
		"list", "-deps", "-e", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths to *types.Package by reading gc
// export data recorded by `go list -export`. Paths it has not seen yet are
// resolved with a lazy `go list` call, so the golden-file test harness can
// pull in stdlib packages on demand. All methods are safe for concurrent
// use; the underlying go/importer gc importer is not, so every import is
// serialized behind a mutex (import resolution is a fast binary read — the
// expensive per-package typechecking still runs in parallel).
type exportImporter struct {
	dir string

	mu      sync.Mutex
	exports map[string]string
	gc      types.Importer
}

// newExportImporter returns an importer rooted at dir (any directory the
// go tool can run in). fset must be the FileSet shared with the caller's
// type checker so positions stay consistent.
func newExportImporter(fset *token.FileSet, dir string) *exportImporter {
	e := &exportImporter{dir: dir, exports: make(map[string]string)}
	e.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		// Called with e.mu held (all imports funnel through Import).
		file, err := e.exportFileLocked(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return e
}

// seed records already-known export data locations (from a prior goList).
func (e *exportImporter) seed(pkgs []listedPackage) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			e.exports[p.ImportPath] = p.Export
		}
	}
}

// exportFileLocked returns the export data file for path, shelling out to
// `go list` if it is not cached. e.mu must be held.
func (e *exportImporter) exportFileLocked(path string) (string, error) {
	if f, ok := e.exports[path]; ok {
		return f, nil
	}
	pkgs, err := goList(e.dir, []string{path})
	if err != nil {
		return "", err
	}
	for _, p := range pkgs {
		if p.Export != "" {
			e.exports[p.ImportPath] = p.Export
		}
	}
	f, ok := e.exports[path]
	if !ok {
		return "", fmt.Errorf("lint: no export data for %q", path)
	}
	return f, nil
}

// Import implements types.Importer.
func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gc.Import(path)
}

// Runner loads, type-checks, and analyzes packages concurrently.
type Runner struct {
	// Analyzers to run; nil means all registered analyzers.
	Analyzers []*Analyzer
	// Concurrency bounds the number of packages analyzed in parallel.
	// Zero means GOMAXPROCS.
	Concurrency int
}

// Run analyzes the packages matched by patterns (e.g. "./...") relative to
// dir and returns every surviving diagnostic, sorted deterministically.
// Test files are not analyzed: tests legitimately use wall clocks and ad
// hoc randomness, and the determinism contract applies to the simulator
// itself.
//
// A package that fails to parse or type-check does not abort the run: the
// remaining packages are still analyzed, their diagnostics are returned,
// and the per-package errors come back joined as the error value. Callers
// therefore must consume the diagnostics even when err != nil — one broken
// package must not hide the findings in ninety-nine healthy ones.
func (r *Runner) Run(dir string, patterns ...string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := r.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, dir)
	imp.seed(listed)

	var targets []listedPackage
	for _, p := range listed {
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	workers := r.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu    sync.Mutex
		diags []Diagnostic
		errs  []error
		wg    sync.WaitGroup
	)
	jobs := make(chan listedPackage)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				ds, err := checkPackage(fset, imp, p, analyzers)
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				}
				diags = append(diags, ds...)
				mu.Unlock()
			}
		}()
	}
	for _, p := range targets {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	SortDiagnostics(diags)
	// Workers finish in scheduler order; sort the errors so the joined
	// message is as deterministic as the diagnostics.
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return diags, errors.Join(errs...)
}

// checkPackage parses and type-checks one package from source, then runs
// the analyzers over it.
func checkPackage(fset *token.FileSet, imp types.Importer, p listedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", p.ImportPath, err)
	}
	return analyze(fset, files, pkg, info, analyzers), nil
}
