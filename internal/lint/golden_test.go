package lint

// Golden-file harness for the analyzers, in the style of
// golang.org/x/tools/go/analysis/analysistest but built on the stdlib
// only. Each directory under testdata/src is one package; a comment
//
//	expr // want "regexp" "another regexp"
//
// asserts that each listed regexp matches exactly one diagnostic reported
// on that line, and the test fails on any unmatched want or unexpected
// diagnostic. Imports between testdata packages resolve against the
// testdata/src root (GOPATH-style), everything else against real export
// data via `go list -export`.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// testdataLoader type-checks packages rooted at testdata/src.
type testdataLoader struct {
	fset     *token.FileSet
	root     string
	fallback types.Importer
	cache    map[string]*loadedPkg
}

type loadedPkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	err   error
}

func newTestdataLoader(t *testing.T) *testdataLoader {
	t.Helper()
	fset := token.NewFileSet()
	return &testdataLoader{
		fset:     fset,
		root:     filepath.Join("testdata", "src"),
		fallback: newExportImporter(fset, "."),
		cache:    make(map[string]*loadedPkg),
	}
}

// load parses and type-checks the testdata package at importPath.
func (l *testdataLoader) load(importPath string) (*loadedPkg, error) {
	if p, ok := l.cache[importPath]; ok {
		return p, p.err
	}
	dir := filepath.Join(l.root, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{info: newInfo()}
	l.cache[importPath] = p
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		p.err = fmt.Errorf("no Go files in %s", dir)
		return p, p.err
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p, p.err
		}
		p.files = append(p.files, f)
	}
	conf := types.Config{Importer: l}
	p.pkg, p.err = conf.Check(importPath, l.fset, p.files, p.info)
	return p, p.err
}

// Import implements types.Importer: testdata-local packages first, then
// real export data.
func (l *testdataLoader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.fallback.Import(path)
}

// wantRE extracts the quoted regexps of a want comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantedDiag struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans the files for `// want "..."` comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string]map[int][]*wantedDiag {
	t.Helper()
	wants := make(map[string]map[int][]*wantedDiag)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimPrefix(c.Text, "//")
				body = strings.TrimSpace(body)
				if !strings.HasPrefix(body, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(body, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int][]*wantedDiag)
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &wantedDiag{re: re})
				}
			}
		}
	}
	return wants
}

// runGolden analyzes one testdata package with the given analyzers and
// checks the diagnostics against the package's want comments.
func runGolden(t *testing.T, loader *testdataLoader, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	p, err := loader.load(importPath)
	if err != nil {
		t.Fatalf("load %s: %v", importPath, err)
	}
	diags := analyze(loader.fset, p.files, p.pkg, p.info, analyzers)
	wants := collectWants(t, loader.fset, p.files)
	for _, d := range diags {
		ws := wants[d.Pos.Filename][d.Pos.Line]
		found := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", file, line, w.re)
				}
			}
		}
	}
}

func TestWallTimeGolden(t *testing.T) {
	loader := newTestdataLoader(t)
	runGolden(t, loader, "walltime/sim", WallTime)
	// Outside the deterministic set the same calls are legal.
	runGolden(t, loader, "walltime/wire", WallTime)
}

func TestSeededRandGolden(t *testing.T) {
	runGolden(t, newTestdataLoader(t), "seededrand/app", SeededRand)
}

func TestFloatEqGolden(t *testing.T) {
	loader := newTestdataLoader(t)
	runGolden(t, loader, "floateq/cc", FloatEq)
	// Outside the control-loop set float equality is not flagged.
	runGolden(t, loader, "floateq/util", FloatEq)
}

func TestUnitMixGolden(t *testing.T) {
	runGolden(t, newTestdataLoader(t), "unitmix/app", UnitMix)
}

// TestAllowGolden proves //pelsvet:allow suppresses a real diagnostic and
// that naming an unknown analyzer in a directive is itself reported.
func TestAllowGolden(t *testing.T) {
	runGolden(t, newTestdataLoader(t), "allow/sim", WallTime)
}

// TestAllowSuppressesAll double-checks, independently of want comments,
// that the suppressed file yields no walltime diagnostics at all.
func TestAllowSuppressesAll(t *testing.T) {
	loader := newTestdataLoader(t)
	p, err := loader.load("allowclean/sim")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := analyze(loader.fset, p.files, p.pkg, p.info, []*Analyzer{WallTime})
	if len(diags) != 0 {
		t.Fatalf("want 0 diagnostics after //pelsvet:allow, got %v", diags)
	}
}

func TestGuardedGolden(t *testing.T) {
	runGolden(t, newTestdataLoader(t), "guarded/app", Guarded)
}

// TestGuardedBadDirectives proves a //pelsvet:guards directive naming a
// non-mutex sibling (or nothing) is reported and guards nothing. (These
// diagnostics anchor on the directive comments, which a same-line want
// comment cannot express.)
func TestGuardedBadDirectives(t *testing.T) {
	loader := newTestdataLoader(t)
	p, err := loader.load("guardedbad/app")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := analyze(loader.fset, p.files, p.pkg, p.info, []*Analyzer{Guarded})
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	wantSub := []string{
		`pelsvet:guards names "nosuch", which is not a sync.Mutex/sync.RWMutex field of s`,
		"pelsvet:guards directive names no mutex field",
	}
	if len(diags) != len(wantSub) {
		t.Fatalf("want %d diagnostics, got %d: %v", len(wantSub), len(got), got)
	}
	joined := strings.Join(got, "\n")
	for _, w := range wantSub {
		if !strings.Contains(joined, w) {
			t.Errorf("missing diagnostic %q in:\n%s", w, joined)
		}
	}
}

func TestNoAllocGolden(t *testing.T) {
	runGolden(t, newTestdataLoader(t), "noalloc/app", NoAlloc)
}

func TestGoExitGolden(t *testing.T) {
	loader := newTestdataLoader(t)
	runGolden(t, loader, "goexit/app", GoExit)
	// Package main is exempt: the same leak produces no diagnostics.
	runGolden(t, loader, "goexit/mainbin", GoExit)
}

// TestAllowNewAnalyzers proves //pelsvet:allow works with the guarded,
// noalloc, and goexit names: each control finding fires and its allowed
// twin stays silent.
func TestAllowNewAnalyzers(t *testing.T) {
	runGolden(t, newTestdataLoader(t), "allownew/app", Guarded, NoAlloc, GoExit)
}

// TestAllowUnknownNewName proves a misspelled new-analyzer name in an
// allow directive is reported and suppresses nothing.
func TestAllowUnknownNewName(t *testing.T) {
	loader := newTestdataLoader(t)
	p, err := loader.load("allownewbad/app")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := analyze(loader.fset, p.files, p.pkg, p.info, []*Analyzer{GoExit})
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	wantSub := []string{
		`pelsvet: pelsvet:allow names unknown analyzer "guared"`,
		"goexit: goroutine is not tied to a lifecycle",
	}
	if len(diags) != len(wantSub) {
		t.Fatalf("want %d diagnostics, got %d: %v", len(wantSub), len(got), got)
	}
	joined := strings.Join(got, "\n")
	for _, w := range wantSub {
		if !strings.Contains(joined, w) {
			t.Errorf("missing diagnostic %q in:\n%s", w, joined)
		}
	}
}

// TestAllowBadDirectives proves a typo'd or empty directive suppresses
// nothing and is itself reported. (These diagnostics anchor on the
// directive comments, which a same-line want comment cannot express.)
func TestAllowBadDirectives(t *testing.T) {
	loader := newTestdataLoader(t)
	p, err := loader.load("allowbad/sim")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := analyze(loader.fset, p.files, p.pkg, p.info, []*Analyzer{WallTime})
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	wantSub := []string{
		`pelsvet: pelsvet:allow names unknown analyzer "bogus"`,
		"pelsvet: pelsvet:allow directive names no analyzer",
		"walltime: time.Now reads the wall clock", // after the typo'd directive
		"walltime: time.Now reads the wall clock", // after the bare directive
	}
	if len(diags) != len(wantSub) {
		t.Fatalf("want %d diagnostics, got %d: %v", len(wantSub), len(got), got)
	}
	joined := strings.Join(got, "\n")
	for _, w := range wantSub {
		if !strings.Contains(joined, w) {
			t.Errorf("missing diagnostic %q in:\n%s", w, joined)
		}
	}
}
