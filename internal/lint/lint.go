// Package lint is a from-scratch static-analysis framework for the PELS
// simulator, built entirely on the standard library (go/ast, go/parser,
// go/types, go/importer — no golang.org/x/tools). It exists to machine-check
// the invariants the paper reproduction depends on:
//
//   - the deterministic simulation core never reads the wall clock
//     (walltime analyzer),
//   - every random draw flows through an injected, seeded *rand.Rand
//     (seededrand analyzer),
//   - control-loop code never compares floats with == / != (floateq
//     analyzer),
//   - quantities with units (bit rates, durations) are not mixed or fed
//     raw untyped constants (unitmix analyzer),
//   - struct fields annotated (or inferred) as mutex-guarded are only
//     touched under their lock (guarded analyzer),
//   - //pelsvet:noalloc hot-path functions contain no allocating
//     constructs (noalloc analyzer),
//   - every spawned goroutine outside package main is tied to a
//     lifecycle — ctx, WaitGroup, or channel (goexit analyzer).
//
// Diagnostics may be suppressed with a justification comment:
//
//	//pelsvet:allow walltime the wire boundary translates to virtual time here
//
// placed on the same line as the offending expression or on the line
// immediately above it. Several analyzers may be listed, comma-separated.
// Referencing an analyzer name that does not exist is itself reported, so
// stale allow comments cannot silently rot.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only selections, and
	// //pelsvet:allow comments. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns every registered analyzer, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{WallTime, SeededRand, FloatEq, UnitMix, Guarded, NoAlloc, GoExit}
}

// Select resolves a list of analyzer names. An empty list selects every
// analyzer; an unknown name is an error (never silently ignored).
func Select(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	known := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	var sel []*Analyzer
	for _, n := range names {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
		}
		sel = append(sel, a)
	}
	return sel, nil
}

// allowDirective is the comment prefix that suppresses a diagnostic.
const allowDirective = "//pelsvet:allow"

// allowSet records, per file line, which analyzers an allow comment names.
type allowSet map[string]map[int]map[string]bool

// collectAllows scans the package's comments for //pelsvet:allow directives.
// A directive naming an unknown analyzer is reported as a diagnostic from
// the pseudo-analyzer "pelsvet" so typos cannot silently disable nothing.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	allows := make(allowSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{
						Analyzer: "pelsvet",
						Pos:      pos,
						Message:  "pelsvet:allow directive names no analyzer",
					})
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if !known[name] {
						bad = append(bad, Diagnostic{
							Analyzer: "pelsvet",
							Pos:      pos,
							Message:  fmt.Sprintf("pelsvet:allow names unknown analyzer %q", name),
						})
						continue
					}
					byLine := allows[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						allows[pos.Filename] = byLine
					}
					if byLine[pos.Line] == nil {
						byLine[pos.Line] = make(map[string]bool)
					}
					byLine[pos.Line][name] = true
				}
			}
		}
	}
	return allows, bad
}

// suppressed reports whether d is covered by an allow comment on its own
// line or the line directly above it.
func (a allowSet) suppressed(d Diagnostic) bool {
	byLine := a[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if byLine[line][d.Analyzer] {
			return true
		}
	}
	return false
}

// SortDiagnostics orders diagnostics by file, line, column, then analyzer,
// so output is deterministic regardless of analysis concurrency.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// jsonDiag is the stable machine-readable schema for one Diagnostic,
// following the same conventions as internal/runner's result records
// (snake_case keys, indented array, deterministic ordering).
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// WriteJSON emits diagnostics as an indented JSON array with a stable
// schema (analyzer, file, line, col, message). An empty slice encodes as
// [] rather than null so consumers can always range over the result.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	recs := make([]jsonDiag, len(diags))
	for i, d := range diags {
		recs[i] = jsonDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// analyze runs the selected analyzers over one type-checked package and
// returns the surviving (non-suppressed) diagnostics.
func analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			diags:    &raw,
		}
		a.Run(pass)
	}
	allows, bad := collectAllows(fset, files)
	kept := bad
	for _, d := range raw {
		if !allows.suppressed(d) {
			kept = append(kept, d)
		}
	}
	return kept
}

// pathTail returns the last slash-separated segment of an import path.
func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// newInfo returns a types.Info with every map analyzers rely on allocated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
