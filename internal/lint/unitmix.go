package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitMix is the type-driven unit-hygiene analyzer. A "unit type" is any
// named numeric type declared in the units package (units.BitRate and
// whatever the package grows next) plus time.Duration, which doubles as the
// simulator's virtual-clock tick. Three classes of mix-ups are flagged:
//
//  1. Direct conversion between two distinct unit types
//     (units.BitRate(someDuration)): the bits-per-second value of a
//     nanosecond count is meaningless. Convert through an explicit
//     dimensionless scalar (float64/int) so the unit change is visible
//     and deliberate.
//  2. Multiplying two non-constant values of the same unit type
//     (elapsed * timeout): rate×rate and duration×duration have no unit
//     meaning; one side should be a dimensionless scalar. The idiomatic
//     forms n * time.Second (typed constant) and time.Duration(n) * tick
//     (explicit scalar conversion) stay legal.
//  3. Untyped numeric constants passed where a unit type is expected
//     (SetRate(64000), Config{Interval: 10}): is that bits or kilobits,
//     nanoseconds or milliseconds? Use a typed unit constant such as
//     3*units.Mbps or 10*time.Millisecond. The literals 0 stays legal —
//     zero is zero in every unit.
var UnitMix = &Analyzer{
	Name: "unitmix",
	Doc: "flag arithmetic mixing distinct named unit types (units.BitRate, " +
		"time.Duration ticks), same-unit multiplication, and untyped " +
		"constants passed into unit-typed parameters or fields",
	Run: runUnitMix,
}

// unitType returns the named unit type of t, or nil if t is not a unit
// type. Aliases are resolved first.
func unitType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	path := obj.Pkg().Path()
	if path == "time" && obj.Name() == "Duration" {
		return named
	}
	if pathTail(path) == "units" {
		if b, ok := named.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
			return named
		}
	}
	return nil
}

func runUnitMix(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pass.Info.Types[n.Fun].IsType() {
					checkUnitConversion(pass, n)
				} else {
					checkUnitArgs(pass, n)
				}
			case *ast.BinaryExpr:
				checkUnitMul(pass, n)
			case *ast.CompositeLit:
				checkUnitFields(pass, n)
			}
			return true
		})
	}
}

// checkUnitConversion flags U(x) where U and x's type are two distinct
// unit types.
func checkUnitConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := unitType(pass.Info.TypeOf(call.Fun))
	src := unitType(pass.Info.TypeOf(call.Args[0]))
	if dst == nil || src == nil || types.Identical(dst, src) {
		return
	}
	pass.Reportf(call.Pos(),
		"converts %s directly to %s; go through an explicit dimensionless scalar (float64/int) so the unit change is deliberate",
		typeName(src), typeName(dst))
}

// checkUnitMul flags a*b where both operands are the same non-constant
// unit type and neither is an explicit scalar conversion.
func checkUnitMul(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.MUL {
		return
	}
	ux := unitType(pass.Info.TypeOf(bin.X))
	uy := unitType(pass.Info.TypeOf(bin.Y))
	if ux == nil || uy == nil || !types.Identical(ux, uy) {
		return
	}
	if isConstExpr(pass, bin.X) || isConstExpr(pass, bin.Y) {
		return // n * time.Second and 2 * units.Mbps are the idiom
	}
	if isScalarConversion(pass, bin.X) || isScalarConversion(pass, bin.Y) {
		return // time.Duration(n) * tick: scalar made explicit
	}
	pass.Reportf(bin.OpPos,
		"multiplies two %s values; %s × %s has no unit meaning — make one side a dimensionless scalar",
		typeName(ux), typeName(ux), typeName(uy))
}

// checkUnitArgs flags untyped numeric literals passed as unit-typed
// parameters.
func checkUnitArgs(pass *Pass, call *ast.CallExpr) {
	sig, ok := types.Unalias(pass.Info.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue // f(xs...) spread form
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		u := unitType(pt)
		if u == nil {
			continue
		}
		if lit := bareNumericLit(arg); lit != nil {
			pass.Reportf(arg.Pos(),
				"untyped constant %s passed as %s; use a typed unit constant (e.g. 3*units.Mbps, 10*time.Millisecond)",
				lit.Value, typeName(u))
		}
	}
}

// checkUnitFields flags untyped numeric literals assigned to unit-typed
// struct fields in composite literals.
func checkUnitFields(pass *Pass, lit *ast.CompositeLit) {
	st, ok := types.Unalias(pass.Info.TypeOf(lit)).Underlying().(*types.Struct)
	if !ok {
		return
	}
	fieldByName := make(map[string]*types.Var, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fieldByName[st.Field(i).Name()] = st.Field(i)
	}
	for i, elt := range lit.Elts {
		var field *types.Var
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field = fieldByName[key.Name]
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		if field == nil {
			continue
		}
		u := unitType(field.Type())
		if u == nil {
			continue
		}
		if l := bareNumericLit(value); l != nil {
			pass.Reportf(value.Pos(),
				"untyped constant %s assigned to %s field %s; use a typed unit constant",
				l.Value, typeName(u), field.Name())
		}
	}
}

// bareNumericLit returns expr as a numeric literal if it is a plain untyped
// INT or FLOAT literal other than 0, else nil.
func bareNumericLit(expr ast.Expr) *ast.BasicLit {
	lit, ok := expr.(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return nil
	}
	if lit.Value == "0" || lit.Value == "0.0" {
		return nil
	}
	return lit
}

// isConstExpr reports whether the type checker evaluated expr to a
// constant.
func isConstExpr(pass *Pass, expr ast.Expr) bool {
	return pass.Info.Types[expr].Value != nil
}

// isScalarConversion reports whether expr is a conversion of a plain
// (non-unit) numeric value into a unit type, i.e. an explicit statement
// that the operand is a dimensionless scalar.
func isScalarConversion(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || !pass.Info.Types[call.Fun].IsType() {
		return false
	}
	if unitType(pass.Info.TypeOf(call.Fun)) == nil {
		return false
	}
	src := pass.Info.TypeOf(call.Args[0])
	if src == nil || unitType(src) != nil {
		return false
	}
	b, ok := src.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// typeName renders a named type as pkg.Name.
func typeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
