package lint

import (
	"go/ast"
	"go/types"
)

// randPkgs are the import paths whose package-level functions draw from a
// process-global source.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// seededRandAllowed lists math/rand identifiers that do NOT consume the
// global source: constructors for injectable generators. Everything else at
// package level (Int, Intn, Float64, Perm, Shuffle, Seed, ...) is banned.
var seededRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *rand.Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// SeededRand forbids package-level math/rand functions everywhere in the
// tree. The global source is shared process state: two experiments running
// on the parallel runner would interleave draws nondeterministically, and
// no seed recorded in a result file could ever reproduce the run. Every
// random draw must flow through an injected *rand.Rand (usually
// sim.Engine.Rand()).
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid package-level math/rand functions (global source); require " +
		"an injected *rand.Rand so the recorded seed fully determines the run",
	Run: runSeededRand,
}

func runSeededRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only flag package-qualified uses (rand.Intn), not method
			// calls on an injected *rand.Rand (rng.Intn).
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if _, ok := pass.Info.Uses[id].(*types.PkgName); !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				return true
			}
			if !seededRandAllowed[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global source; inject a seeded *rand.Rand instead",
					fn.Name())
			}
			return true
		})
	}
}
