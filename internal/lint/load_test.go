package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunnerPartialDiagnostics is the regression test for the
// one-broken-package-hides-all-findings bug: Runner.Run must return the
// diagnostics from healthy packages alongside the broken package's error.
func TestRunnerPartialDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module brokentest\n\ngo 1.22\n")
	// sim is in walltime's deterministic package set: one guaranteed
	// finding from a healthy package.
	write("sim/sim.go", `package sim

import "time"

func Now() time.Time { return time.Now() }
`)
	// bad parses but fails to type-check: the load error for this package
	// must not suppress sim's diagnostic.
	write("bad/bad.go", `package bad

func f() { undefined() }
`)

	r := &Runner{Analyzers: []*Analyzer{WallTime}}
	diags, err := r.Run(dir, "./...")
	if err == nil {
		t.Fatalf("want a load error for package bad, got nil (diags: %v)", diags)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error does not mention the broken package: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 partial diagnostic from package sim, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "walltime" || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
