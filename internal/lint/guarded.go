package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// guardsDirective marks a struct field as guarded by a named sibling
// mutex:
//
//	frame int //pelsvet:guards mu
//
// The directive may sit in the field's doc comment or its line comment.
// The special name "-" opts a field out of inference (for fields that are
// immutable after construction or synchronized some other way).
const guardsDirective = "//pelsvet:guards"

// Guarded enforces lock discipline on annotated (and inferred) struct
// fields: every read or write of a guarded field must happen in a
// function that acquires the guarding mutex on the same base expression,
// or in a function whose name ends in "Locked" (the caller-holds-the-lock
// convention), or on a freshly constructed value that cannot be shared
// yet.
//
// Guarded fields come from two sources:
//
//   - explicit //pelsvet:guards <mutex> directives on field declarations;
//   - inference: in a struct with a mutex field named "mu"
//     (sync.Mutex or sync.RWMutex), the fields declared directly below it
//     in the same paragraph (no blank line in between) are inferred to be
//     guarded by it — the standard Go comment-free idiom.
//
// The check is deliberately flow-insensitive: a function that acquires
// the mutex anywhere is accepted, so a lock taken on only some paths is
// not caught (known false negative, see DESIGN.md §14). What it does
// catch — reliably, and without needing the racy interleaving to occur
// under -race — is the method that forgets the lock entirely.
var Guarded = &Analyzer{
	Name: "guarded",
	Doc: "enforce //pelsvet:guards lock discipline: reads/writes of guarded " +
		"struct fields must come from functions that acquire the named mutex " +
		"(or are *Locked helpers); fields after a `mu` mutex in the same " +
		"paragraph are inferred guarded",
	Run: runGuarded,
}

// guardSpec records which mutex guards one struct field.
type guardSpec struct {
	structName string
	fieldName  string
	mutexName  string
}

func runGuarded(pass *Pass) {
	guarded := collectGuards(pass)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardScope(pass, guarded, fd.Name.Name, fd.Body)
		}
	}
}

// mutexTypeName reports whether t is sync.Mutex or sync.RWMutex.
func mutexTypeName(t types.Type) bool {
	if t == nil {
		return false
	}
	s := t.String()
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// fieldDirective extracts the //pelsvet:guards name from a field's doc or
// line comment, if present.
func fieldDirective(field *ast.Field) (name string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, guardsDirective) {
				continue
			}
			rest := strings.Fields(strings.TrimPrefix(c.Text, guardsDirective))
			if len(rest) == 0 {
				return "", c.Pos(), true
			}
			return rest[0], c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// collectGuards builds the guarded-field map for one package from struct
// declarations: explicit //pelsvet:guards directives plus mu-paragraph
// inference. Directives naming a non-mutex (or missing) sibling are
// reported so annotations cannot silently rot.
func collectGuards(pass *Pass) map[*types.Var]guardSpec {
	guarded := make(map[*types.Var]guardSpec)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Index the struct's mutex fields by name.
			mutexes := make(map[string]bool)
			for _, field := range st.Fields.List {
				if mutexTypeName(pass.Info.TypeOf(field.Type)) {
					for _, nm := range field.Names {
						mutexes[nm.Name] = true
					}
				}
			}
			inferFrom := -1 // index after which fields are inferred guarded by "mu"
			prevEnd := 0
			for i, field := range st.Fields.List {
				line := pass.Fset.Position(field.Pos()).Line
				endLine := pass.Fset.Position(field.End()).Line
				// A blank line (or a doc comment pushing the field down)
				// ends the mu paragraph.
				if inferFrom >= 0 && (line-prevEnd > 1 || field.Doc != nil) {
					inferFrom = -1
				}
				prevEnd = endLine

				name, dirPos, hasDir := fieldDirective(field)
				switch {
				case hasDir && name == "-":
					// Explicit opt-out of inference.
					continue
				case hasDir && name == "":
					pass.Reportf(dirPos, "pelsvet:guards directive names no mutex field")
					continue
				case hasDir && !mutexes[name]:
					pass.Reportf(dirPos,
						"pelsvet:guards names %q, which is not a sync.Mutex/sync.RWMutex field of %s",
						name, ts.Name.Name)
					continue
				case hasDir:
					markGuarded(pass, guarded, ts.Name.Name, field, name)
					continue
				}
				if mutexTypeName(pass.Info.TypeOf(field.Type)) {
					for _, nm := range field.Names {
						if nm.Name == "mu" {
							inferFrom = i
						}
					}
					continue
				}
				if inferFrom >= 0 && i > inferFrom {
					markGuarded(pass, guarded, ts.Name.Name, field, "mu")
				}
			}
			return true
		})
	}
	return guarded
}

func markGuarded(pass *Pass, guarded map[*types.Var]guardSpec, structName string, field *ast.Field, mutex string) {
	for _, nm := range field.Names {
		if v, ok := pass.Info.Defs[nm].(*types.Var); ok {
			guarded[v] = guardSpec{structName: structName, fieldName: nm.Name, mutexName: mutex}
		}
	}
}

// checkGuardScope analyzes one function-like body. Function literals are
// separate scopes: a closure may run on another goroutine, so a lock held
// by the enclosing function does not cover it — each literal must acquire
// the mutex (or be suppressed) on its own.
func checkGuardScope(pass *Pass, guarded map[*types.Var]guardSpec, name string, body *ast.BlockStmt) {
	type scope struct {
		name string
		body *ast.BlockStmt
	}
	queue := []scope{{name, body}}
	for len(queue) > 0 {
		sc := queue[0]
		queue = queue[1:]

		locked := make(map[string]bool) // "base.mutex" acquisitions in this scope
		fresh := make(map[string]bool)  // locals holding freshly constructed values
		reported := make(map[string]bool)

		// Walk the scope, collecting lock calls and fresh locals, and
		// queueing nested literals as their own scopes.
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				queue = append(queue, scope{sc.name + ".func", n.Body})
				return false
			case *ast.CallExpr:
				if base, mutex, kind := lockCall(n); kind {
					locked[base+"."+mutex] = true
				}
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for i, rhs := range n.Rhs {
						if i < len(n.Lhs) && isFreshValue(rhs) {
							if id, ok := n.Lhs[i].(*ast.Ident); ok {
								fresh[id.Name] = true
							}
						}
					}
				}
			case *ast.GenDecl:
				if n.Tok == token.VAR {
					for _, sp := range n.Specs {
						vs, ok := sp.(*ast.ValueSpec)
						if !ok {
							continue
						}
						allFresh := len(vs.Values) == 0
						for _, v := range vs.Values {
							allFresh = isFreshValue(v)
							if !allFresh {
								break
							}
						}
						if allFresh {
							for _, id := range vs.Names {
								fresh[id.Name] = true
							}
						}
					}
				}
			}
			return true
		}
		ast.Inspect(sc.body, walk)

		// *Locked helpers assume the caller holds the lock by convention.
		if strings.HasSuffix(strings.TrimSuffix(sc.name, ".func"), "Locked") {
			continue
		}

		ast.Inspect(sc.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // analyzed as its own scope
			}
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo, ok := pass.Info.Selections[se]
			if !ok || selInfo.Kind() != types.FieldVal {
				return true
			}
			v, ok := selInfo.Obj().(*types.Var)
			if !ok {
				return true
			}
			g, ok := guarded[v]
			if !ok {
				return true
			}
			base := types.ExprString(se.X)
			if id, ok := se.X.(*ast.Ident); ok && fresh[id.Name] {
				return true
			}
			if locked[base+"."+g.mutexName] {
				return true
			}
			key := base + "." + g.fieldName
			if reported[key] {
				return true
			}
			reported[key] = true
			pass.Reportf(se.Sel.Pos(),
				"%s.%s is guarded by %q but %s never acquires %s.%s (lock it, rename the helper *Locked, or justify with //pelsvet:allow guarded)",
				g.structName, g.fieldName, g.mutexName, sc.name, base, g.mutexName)
			return true
		})
	}
}

// lockCall matches base.mutex.Lock() / base.mutex.RLock() and returns the
// rendered base expression and mutex field name.
func lockCall(call *ast.CallExpr) (base, mutex string, ok bool) {
	outer, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || (outer.Sel.Name != "Lock" && outer.Sel.Name != "RLock") {
		return "", "", false
	}
	inner, isSel := outer.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(inner.X), inner.Sel.Name, true
}

// isFreshValue reports whether e constructs a brand-new value (composite
// literal, optionally behind &) that cannot yet be shared with another
// goroutine, so unguarded initialization of its fields is safe.
func isFreshValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	}
	return false
}
