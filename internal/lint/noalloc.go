package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noallocDirective marks a function as an allocation-free contract:
//
//	//pelsvet:noalloc
//	func AppendDatagram(dst []byte, ...) ([]byte, error)
//
// The directive goes in the function's doc comment.
const noallocDirective = "//pelsvet:noalloc"

// NoAlloc statically rejects allocating constructs inside functions
// annotated //pelsvet:noalloc — the hot-path zero-allocation contract
// that the perf gate (DESIGN.md §12) otherwise only checks dynamically.
//
// Flagged constructs: make/new, slice and map literals, &composite
// literals, function literals (closures), string concatenation,
// string<->[]byte/[]rune conversions, fmt package calls, append to a
// slice with no preallocated capacity (fresh nil/empty local), interface
// boxing of concrete non-pointer values at call sites, and method-value
// expressions.
//
// Error bail-out paths are exempt: statements inside an if-block or
// switch-case that ends in return or panic are cold paths by
// construction (the benchmarked hot path never takes them), so
// fmt.Errorf in a validation branch does not violate the contract.
//
// The check is intraprocedural: callees are trusted (annotate them too
// if they are on the hot path). See DESIGN.md §14 for the full grammar
// and the known false-negative list.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "reject allocating constructs (closures, boxing, make/new, literals, " +
		"conversions, fmt, unpreallocated append) inside //pelsvet:noalloc " +
		"functions, excluding error bail-out paths",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoAllocDirective(fd.Doc) {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
}

func hasNoAllocDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == noallocDirective || strings.HasPrefix(text, noallocDirective+" ") {
			return true
		}
	}
	return false
}

// posRange is a half-open source span used to mark bail-out blocks.
type posRange struct{ lo, hi token.Pos }

// bailoutRanges collects the spans of if-blocks, else-blocks, and
// switch/select cases whose last statement is a return or panic: cold
// error paths where allocation is acceptable.
func bailoutRanges(body *ast.BlockStmt) []posRange {
	var ranges []posRange
	mark := func(pos, end token.Pos, stmts []ast.Stmt) {
		if len(stmts) == 0 {
			return
		}
		if isBailout(stmts[len(stmts)-1]) {
			ranges = append(ranges, posRange{pos, end})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			mark(n.Body.Pos(), n.Body.End(), n.Body.List)
			if blk, ok := n.Else.(*ast.BlockStmt); ok {
				mark(blk.Pos(), blk.End(), blk.List)
			}
		case *ast.CaseClause:
			mark(n.Pos(), n.End(), n.Body)
		case *ast.CommClause:
			mark(n.Pos(), n.End(), n.Body)
		}
		return true
	})
	return ranges
}

// isBailout reports whether s terminates the enclosing function
// (return or panic).
func isBailout(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	bailouts := bailoutRanges(fd.Body)
	inBailout := func(pos token.Pos) bool {
		for _, r := range bailouts {
			if r.lo <= pos && pos < r.hi {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if inBailout(pos) {
			return
		}
		args = append(args, name)
		pass.Reportf(pos, format+" in noalloc function %s", args...)
	}

	// Locals that are fresh nil/empty slices: append to them grows from
	// zero capacity, allocating on the hot path.
	freshSlices := collectFreshSlices(fd.Body)
	// Fun expressions of calls: a method selector used as call.Fun is a
	// plain call, not an allocating method value.
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[call.Fun] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal (closure) allocates")
			return false // its body is already off-contract

		case *ast.CompositeLit:
			t := pass.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
			return true

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal may escape to the heap")
				}
			}
			return true

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.Info.TypeOf(n.X)) {
				report(n.Pos(), "string concatenation allocates")
			}
			return true

		case *ast.SelectorExpr:
			if callFuns[n] {
				return true
			}
			if fn, ok := pass.Info.Uses[n.Sel].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					report(n.Pos(), "method value %s.%s allocates", types.ExprString(n.X), n.Sel.Name)
				}
			}
			return true

		case *ast.CallExpr:
			checkNoAllocCall(pass, n, freshSlices, report)
			return true
		}
		return true
	})
}

func checkNoAllocCall(pass *Pass, call *ast.CallExpr, freshSlices map[string]bool, report func(token.Pos, string, ...any)) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			report(call.Pos(), "make allocates")
			return
		case "new":
			report(call.Pos(), "new allocates")
			return
		case "append":
			if len(call.Args) > 0 {
				if base, ok := call.Args[0].(*ast.Ident); ok && freshSlices[base.Name] {
					report(call.Pos(), "append to %s, a slice with no preallocated capacity, allocates", base.Name)
				}
				if _, ok := call.Args[0].(*ast.CompositeLit); ok {
					report(call.Pos(), "append to a fresh slice literal allocates")
				}
			}
			return
		}
	}

	// Conversions: T(x). Flag the allocating string/byte/rune family and
	// conversions to interface types (boxing).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.Info.TypeOf(call.Args[0])
		switch {
		case types.IsInterface(dst.Underlying()):
			if src != nil && !types.IsInterface(src.Underlying()) {
				report(call.Pos(), "conversion boxes %s into interface %s", src, dst)
			}
		case isStringType(dst) && src != nil && !isStringType(src):
			report(call.Pos(), "conversion to string allocates")
		case isByteOrRuneSlice(dst) && isStringType(src):
			report(call.Pos(), "string-to-slice conversion allocates")
		}
		return
	}

	// fmt calls allocate (interface boxing plus internal buffers).
	if se, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkg, ok := se.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[pkg].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(call.Pos(), "fmt.%s allocates", se.Sel.Name)
				return
			}
		}
	}

	// Interface boxing at ordinary call sites: passing a concrete
	// non-pointer-shaped value where the parameter is an interface.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := pass.Info.TypeOf(arg)
		if pt == nil || at == nil {
			continue
		}
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Underlying()) && !pointerShaped(at) {
			report(arg.Pos(), "argument boxes %s into interface %s", at, pt)
		}
	}
}

// collectFreshSlices finds locals declared as nil or empty slices
// (`var x []T`, `x := []T{}`) — appending to them always grows from zero
// capacity.
func collectFreshSlices(body *ast.BlockStmt) map[string]bool {
	fresh := make(map[string]bool)
	emptySliceLit := func(e ast.Expr) bool {
		cl, ok := e.(*ast.CompositeLit)
		if !ok || len(cl.Elts) != 0 {
			return false
		}
		_, isArr := cl.Type.(*ast.ArrayType)
		return isArr
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, sp := range n.Specs {
				vs, ok := sp.(*ast.ValueSpec)
				if !ok {
					continue
				}
				_, isSliceType := vs.Type.(*ast.ArrayType)
				for i, id := range vs.Names {
					switch {
					case len(vs.Values) == 0 && isSliceType:
						fresh[id.Name] = true
					case i < len(vs.Values) && emptySliceLit(vs.Values[i]):
						fresh[id.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && emptySliceLit(rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						fresh[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit in an interface word
// without heap allocation (pointers, channels, maps, funcs, unsafe
// pointers).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}
