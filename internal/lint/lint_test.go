package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil {
		t.Fatalf("Select(nil): %v", err)
	}
	if len(all) != len(Analyzers()) {
		t.Fatalf("Select(nil) returned %d analyzers, want %d", len(all), len(Analyzers()))
	}

	sel, err := Select([]string{"floateq", "walltime"})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(sel) != 2 || sel[0].Name != "floateq" || sel[1].Name != "walltime" {
		t.Fatalf("Select returned wrong analyzers: %v", sel)
	}
}

// TestSelectUnknownAnalyzer proves an unknown name is an error, never a
// silent no-op.
func TestSelectUnknownAnalyzer(t *testing.T) {
	_, err := Select([]string{"walltime", "bogus"})
	if err == nil {
		t.Fatal("Select with unknown analyzer: want error, got nil")
	}
	if !strings.Contains(err.Error(), `unknown analyzer "bogus"`) {
		t.Fatalf("error %q does not name the unknown analyzer", err)
	}
	if !strings.Contains(err.Error(), "walltime") {
		t.Fatalf("error %q does not list the known analyzers", err)
	}
}

func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "walltime",
			Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
			Message:  "time.Now reads the wall clock",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 1 {
		t.Fatalf("want 1 record, got %d", len(decoded))
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("record missing %q key: %v", key, decoded[0])
		}
	}

	// Empty input must encode as [] (rangeable), not null.
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("WriteJSON(nil) = %q, want []", got)
	}
}

func TestSortDiagnostics(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "b", Pos: token.Position{Filename: "b.go", Line: 1}},
		{Analyzer: "a", Pos: token.Position{Filename: "a.go", Line: 9}},
		{Analyzer: "b", Pos: token.Position{Filename: "a.go", Line: 2, Column: 4}},
		{Analyzer: "a", Pos: token.Position{Filename: "a.go", Line: 2, Column: 4}},
	}
	SortDiagnostics(diags)
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = d.Pos.Filename + ":" + d.Analyzer
	}
	want := []string{"a.go:a", "a.go:b", "a.go:a", "b.go:b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestRunnerOnRealPackage is an end-to-end check of the go list loader and
// concurrent analysis on a real module package that must stay clean.
func TestRunnerOnRealPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	r := &Runner{}
	diags, err := r.Run("../..", "./internal/units", "./internal/sim")
	if err != nil {
		t.Fatalf("Runner.Run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected clean packages, got %v", diags)
	}
}
