// Package sim is golden-test input for //pelsvet:allow handling: a valid
// directive suppresses the diagnostic on its own line or the line below,
// and a directive for one analyzer does not blanket the others.
package sim

import "time"

// Suppressed shows both placement forms; neither call may be flagged.
func Suppressed() time.Time {
	//pelsvet:allow walltime golden test: justified exception on the line above
	t := time.Now()
	time.Sleep(0) //pelsvet:allow walltime golden test: justified exception on the same line
	return t
}

// Unsuppressed shows that excusing one analyzer leaves the rest armed.
func Unsuppressed() time.Time {
	//pelsvet:allow seededrand wrong analyzer, does not cover walltime
	return time.Now() // want "time.Now reads the wall clock"
}
