// Package cc is golden-test input: it carries a control-loop package name,
// so exact floating-point equality must be flagged.
package cc

// Rate is a named float type; the check sees through it.
type Rate float64

// Compare exercises flagged and legal comparisons.
func Compare(a, b float64, r Rate, n int, s string) bool {
	if a == b { // want "== compares floating-point values exactly"
		return true
	}
	if a != 0.5 { // want "!= compares floating-point values exactly"
		return false
	}
	if r == 3 { // want "== compares floating-point values exactly"
		return true
	}
	// Ordered comparisons, integer and string equality stay legal.
	return a <= b || n == 3 || s == "x"
}
