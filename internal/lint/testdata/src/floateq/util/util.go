// Package util is golden-test input: it is not a control-loop package, so
// float equality is left to the programmer's judgment and nothing here may
// be flagged.
package util

// Same is exact by design (e.g. deduplicating identical samples).
func Same(a, b float64) bool { return a == b }
