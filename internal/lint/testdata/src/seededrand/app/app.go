// Package app is golden-test input for the seededrand analyzer: any draw
// from the process-global math/rand source must be flagged, anywhere in
// the tree; injected *rand.Rand generators stay legal.
package app

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Draws exercises banned package-level functions.
func Draws() {
	_ = rand.Int()                     // want "rand.Int draws from the process-global source"
	_ = rand.Intn(10)                  // want "rand.Intn draws from the process-global source"
	_ = rand.Float64()                 // want "rand.Float64 draws from the process-global source"
	_ = rand.Perm(4)                   // want "rand.Perm draws from the process-global source"
	rand.Shuffle(2, func(i, j int) {}) // want "rand.Shuffle draws from the process-global source"
	_ = randv2.IntN(10)                // want "rand.IntN draws from the process-global source"
}

// Injected shows the sanctioned pattern: constructors are allowed, and
// method calls on the injected generator are not package-level functions.
func Injected(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1, 100)
	return rng.Float64() + float64(z.Uint64()) + float64(rng.Intn(7))
}
