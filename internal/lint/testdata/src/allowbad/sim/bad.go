// Package sim is golden-test input for malformed //pelsvet:allow
// directives: a typo'd analyzer name must not suppress anything and must
// itself be reported, as must a directive naming no analyzer at all.
// (The expectations live in lint_test.go rather than want comments,
// because these diagnostics anchor on the directive comments themselves.)
package sim

import "time"

// Typoed is not suppressed: "bogus" is not an analyzer.
func Typoed() time.Time {
	//pelsvet:allow bogus typo'd analyzer name
	return time.Now()
}

// Bare carries a directive naming no analyzer.
func Bare() time.Time {
	//pelsvet:allow
	return time.Now()
}
