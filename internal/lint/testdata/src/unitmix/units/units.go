// Package units is a miniature stand-in for repro/internal/units: the
// unitmix analyzer recognizes named numeric types from any package whose
// import path ends in "units".
package units

// BitRate is a data rate in bits per second.
type BitRate float64

// Typed unit constants.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1000 * BitPerSecond
	Mbps                 = 1000 * Kbps
)
