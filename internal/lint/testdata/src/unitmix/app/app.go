// Package app is golden-test input for the unitmix analyzer: conversions
// between distinct unit types, same-unit multiplication, and raw untyped
// constants in unit positions must all be flagged.
package app

import (
	"time"

	"unitmix/units"
)

// Config carries unit-typed fields.
type Config struct {
	Interval time.Duration
	Rate     units.BitRate
}

func setRate(r units.BitRate)    { _ = r }
func setAll(rs ...units.BitRate) { _ = rs }
func after(d time.Duration) bool { return d > 0 }

// Conversions exercises unit-to-unit conversions.
func Conversions(d time.Duration, r units.BitRate, n int) {
	_ = units.BitRate(d) // want "converts time.Duration directly to units.BitRate"
	_ = time.Duration(r) // want "converts units.BitRate directly to time.Duration"
	// Explicit scalar round-trips are the sanctioned form.
	_ = units.BitRate(float64(d))
	_ = units.BitRate(n)
	_ = time.Duration(n)
}

// Multiplication exercises same-unit products.
func Multiplication(d, tick time.Duration, r units.BitRate, n int) {
	_ = d * tick // want "multiplies two time.Duration values"
	_ = r * r    // want "multiplies two units.BitRate values"
	// Constants and explicit scalar conversions keep the idiom legal.
	_ = 2 * d
	_ = d * time.Millisecond
	_ = time.Duration(n) * tick
	_ = r * units.Kbps
}

// Arguments exercises untyped constants in unit positions.
func Arguments() {
	setRate(64000) // want "untyped constant 64000 passed as units.BitRate"
	setAll(5, 6)   // want "untyped constant 5 passed as units.BitRate" "untyped constant 6 passed as units.BitRate"
	_ = after(250) // want "untyped constant 250 passed as time.Duration"
	// Zero and typed unit constants stay legal.
	setRate(0)
	setRate(3 * units.Mbps)
	_ = after(10 * time.Millisecond)
}

// Fields exercises untyped constants in unit-typed struct fields.
func Fields() Config {
	bad := Config{
		Interval: 10,  // want "untyped constant 10 assigned to time.Duration field Interval"
		Rate:     500, // want "untyped constant 500 assigned to units.BitRate field Rate"
	}
	good := Config{
		Interval: 10 * time.Millisecond,
		Rate:     500 * units.Kbps,
	}
	_ = bad
	return good
}
