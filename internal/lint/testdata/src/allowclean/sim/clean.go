// Package sim is golden-test input: a deterministic-core package whose
// only violation is suppressed with a valid directive, so the walltime
// analyzer must report nothing at all.
package sim

import "time"

// Stamp is fully excused.
func Stamp() time.Time {
	//pelsvet:allow walltime golden test: the whole file is excused
	return time.Now()
}
