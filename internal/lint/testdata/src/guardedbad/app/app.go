// Package app holds malformed //pelsvet:guards directives: naming a
// non-mutex sibling or nothing at all is reported, so annotations cannot
// silently rot. (Checked programmatically — the diagnostics anchor on
// the directive comments.)
package app

import "sync"

type s struct {
	mu sync.Mutex

	//pelsvet:guards nosuch
	a int

	//pelsvet:guards
	b int
}

func (x *s) use() (int, int) { return x.a, x.b }
