// Package app holds misspelled allow directives for the new analyzer
// names: the typo is reported and suppresses nothing. (Checked
// programmatically — these diagnostics anchor on the directive comment,
// which a same-line want comment cannot express.)
package app

func typo() {
	//pelsvet:allow guared misspelled name suppresses nothing
	go func() { _ = 1 }()
}
