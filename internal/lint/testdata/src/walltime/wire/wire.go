// Package wire is golden-test input: it is outside the deterministic set,
// so wall-clock access is legal and nothing here may be flagged.
package wire

import "time"

// Stamp timestamps a real packet; fine at the wire boundary.
func Stamp() time.Time {
	time.Sleep(time.Microsecond)
	return time.Now()
}
