// Package sim is golden-test input: its name places it inside the
// deterministic core, so every wall-clock access below must be flagged.
package sim

import "time"

// Tick exercises the banned time functions.
func Tick() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	elapsed := time.Since(start) // want "time.Since reads the wall clock"
	timer := time.NewTimer(0)    // want "time.NewTimer reads the wall clock"
	<-timer.C
	<-time.After(time.Microsecond) // want "time.After reads the wall clock"
	return elapsed
}

// Virtual shows what stays legal: pure duration arithmetic and parsing,
// which is exactly how the virtual clock is built.
func Virtual(d time.Duration) time.Duration {
	step, _ := time.ParseDuration("30ms")
	return d + 2*step + time.Millisecond
}
