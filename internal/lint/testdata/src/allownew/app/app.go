// Package app exercises //pelsvet:allow against the concurrency and
// allocation analyzers: each pair has an unsuppressed finding (the
// control) and an allowed twin that must stay silent.
package app

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) Bad() int {
	return c.n // want "counter\.n is guarded by \"mu\" but Bad never acquires c\.mu"
}

func (c *counter) Snapshot() int {
	//pelsvet:allow guarded stats snapshot tolerates one stale read
	return c.n
}

//pelsvet:noalloc
func bad() []int {
	return make([]int, 16) // want "make allocates"
}

//pelsvet:noalloc
func warm() []int {
	//pelsvet:allow noalloc one-time warm-up buffer, not on the hot path
	return make([]int, 16)
}

func leak() {
	go func() { _ = 1 }() // want "goroutine is not tied to a lifecycle"
}

func detach() {
	//pelsvet:allow goexit process-lifetime logger, bounded by main exit
	go func() { _ = 1 }()
}
