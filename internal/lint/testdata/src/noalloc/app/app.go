// Package app exercises the noalloc analyzer: every allocating construct
// it knows, the error bail-out exemption, and the unannotated default.
package app

import "fmt"

type pair struct{ a, b int }

type ticker struct{}

func (ticker) tick() {}

func box(v interface{}) { _ = v }

// Hot follows the contract: append to a caller-provided buffer, with
// fmt.Errorf confined to bail-out branches.
//
//pelsvet:noalloc
func Hot(dst []byte, v byte) ([]byte, error) {
	if v == 0 {
		return nil, fmt.Errorf("noalloc: zero value %d", v) // cold error path: allowed
	}
	dst = append(dst, v)
	return dst, nil
}

// Pick panics on bad input — panic branches are bail-outs too.
//
//pelsvet:noalloc
func Pick(k int) int {
	switch k {
	case 0:
		panic(fmt.Sprintf("noalloc: bad k %d", k)) // cold panic path: allowed
	}
	return k
}

//pelsvet:noalloc
func Bad(n int, name string) int {
	s := make([]int, n) // want "make allocates"
	var acc []int
	acc = append(acc, n)         // want "append to acc, a slice with no preallocated capacity"
	f := func() int { return n } // want "function literal \(closure\) allocates"
	m := map[string]int{"x": 1}  // want "map literal allocates"
	l := []int{1, 2}             // want "slice literal allocates"
	p := &pair{a: n}             // want "&composite literal may escape"
	greeting := name + "!"       // want "string concatenation allocates"
	raw := []byte(name)          // want "string-to-slice conversion allocates"
	back := string(raw)          // want "conversion to string allocates"
	_ = fmt.Sprintf("%d", n)     // want "fmt\.Sprintf allocates"
	box(n)                       // want "argument boxes int into interface"
	t := ticker{}
	tick := t.tick // want "method value t\.tick allocates"
	_, _, _, _, _, _, _ = f, m, l, p, greeting, back, tick
	_ = acc
	return len(s)
}

// Cold has no directive: the same constructs are legal.
func Cold(n int) []int {
	out := make([]int, 0, n)
	return append(out, n)
}
