// Package main proves the goexit exemption: goroutines in main packages
// die with the process, so nothing here is flagged.
package main

func main() {
	go func() {
		x := 0
		_ = x
	}()
}
