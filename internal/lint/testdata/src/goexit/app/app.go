// Package app exercises the goexit analyzer: goroutines with no
// lifecycle are flagged; ctx/WaitGroup/channel evidence — in the spawn
// arguments, the closure body, or a same-package named callee — clears
// them.
package app

import (
	"context"
	"fmt"
	"sync"
)

func Leak() {
	go func() { // want "goroutine is not tied to a lifecycle"
		x := 0
		_ = x
	}()
}

func spin() {}

func LeakNamed() {
	go spin() // want "goroutine is not tied to a lifecycle"
}

func LeakForeign() {
	go fmt.Println("fire and forget") // want "goroutine is not tied to a lifecycle"
}

func WithCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func WithWG(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

func WithQuit(quit chan struct{}) {
	go func() {
		<-quit
	}()
}

func WithSelect(a chan int, b chan int) {
	go func() {
		select {
		case <-a:
		case b <- 1:
		}
	}()
}

// ArgLifecycle hands the ctx to a callee: evidence at the spawn site.
func ArgLifecycle(ctx context.Context, f func(context.Context)) {
	go f(ctx)
}

type looper struct{ done chan struct{} }

// run blocks on the done channel; the one-level callee scan sees it.
func (l *looper) run() { <-l.done }

func OKNamed(l *looper) {
	go l.run()
}
