// Package app exercises the guarded analyzer: mu-paragraph inference,
// explicit //pelsvet:guards directives, the *Locked convention, fresh
// locals, per-closure scoping, and base-expression matching.
package app

import "sync"

type counter struct {
	mu   sync.Mutex
	hits int
	last string

	total int //pelsvet:guards mu

	free int
}

// Good locks before touching inferred and annotated fields.
func (c *counter) Good() (int, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	return c.hits, c.last
}

// incrLocked relies on the caller holding the lock — the *Locked suffix
// convention keeps it clean.
func (c *counter) incrLocked() { c.hits++ }

func (c *counter) Bad() int {
	return c.hits // want "counter\.hits is guarded by \"mu\" but Bad never acquires c\.mu"
}

func (c *counter) BadAnnotated() {
	c.total++ // want "counter\.total is guarded by \"mu\" but BadAnnotated never acquires c\.mu"
}

// Free is past the blank line: not in the mu paragraph, not guarded.
func (c *counter) Free() int { return c.free }

// New initializes a fresh, unshared value — no lock needed.
func New() *counter {
	c := &counter{}
	c.hits = 7
	return c
}

// Closure shows per-scope analysis: the method holds the lock, but the
// returned closure may run after Unlock, so it must lock on its own.
func (c *counter) Closure() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.hits // want "counter\.hits is guarded by \"mu\" but Closure\.func never acquires c\.mu"
	}
}

// transfer locks a but touches b: base expressions must match.
func transfer(a, b *counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.hits++
	b.hits-- // want "counter\.hits is guarded by \"mu\" but transfer never acquires b\.mu"
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// Get read-locks: RLock satisfies the guard too.
func (t *table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) BadGet(k string) int {
	return t.m[k] // want "table\.m is guarded by \"mu\" but BadGet never acquires t\.mu"
}

type optout struct {
	mu  sync.Mutex
	reg *int //pelsvet:guards -
	n   int
}

// ReadReg is fine: reg explicitly opted out of inference.
func (o *optout) ReadReg() *int { return o.reg }

func (o *optout) ReadN() int {
	return o.n // want "optout\.n is guarded by \"mu\" but ReadN never acquires o\.mu"
}
