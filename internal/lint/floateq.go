package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// controlLoopPkgs names the packages (by final import-path segment) whose
// arithmetic implements the paper's control loops and closed forms. These
// accumulate floating-point state across thousands of simulated epochs, so
// exact equality there is almost always a latent bug.
var controlLoopPkgs = map[string]bool{
	"cc":       true,
	"aqm":      true,
	"analysis": true,
}

// FloatEq flags == and != between floating-point operands in the
// control-loop packages. Accumulated rates, loss estimates, and γ
// trajectories are never exactly equal to an analytic target; comparisons
// should use an ordering (<=, >=) or an explicit tolerance. Deliberate
// exact-sentinel checks (e.g. division-by-zero guards) take a
// //pelsvet:allow floateq comment with a justification.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between floating-point operands in the control-loop " +
		"packages (cc, aqm, internal/analysis); use tolerances or ordered " +
		"comparisons, or justify with //pelsvet:allow floateq",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	if !controlLoopPkgs[pathTail(pass.Pkg.Path())] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.Info.TypeOf(bin.X)) || isFloat(pass.Info.TypeOf(bin.Y)) {
				pass.Reportf(bin.OpPos,
					"%s compares floating-point values exactly; use a tolerance or ordered comparison",
					bin.Op)
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
