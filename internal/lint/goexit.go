package lint

import (
	"go/ast"
	"go/types"
)

// GoExit flags `go` statements that spawn a goroutine with no visible
// lifecycle: nothing in the spawned function (or its arguments) ties it
// to a context.Context, a sync.WaitGroup, or a channel it can block on
// or be signalled through. Such goroutines cannot be shut down or waited
// for — they leak across Server.Shutdown and make test teardown racy.
//
// Lifecycle evidence, any of which clears a go statement:
//
//   - a value of type context.Context reachable in the arguments or the
//     spawned body,
//   - a sync.WaitGroup (or pointer to one) reachable the same way —
//     wg.Done in the body, or the wg passed as an argument,
//   - any channel operation in the body (send, receive, range, close,
//     select) or a channel-typed argument: the goroutine has a rendezvous
//     another part of the program controls.
//
// For `go x.method()` / `go fn()` where the callee is declared in the
// same package, the callee's body is scanned one level deep (no
// recursion), so the `go l.serialize()` idiom with `defer l.wg.Done()`
// inside the method passes. Cross-package callees with no lifecycle
// evidence in the arguments are flagged — hand them a ctx or channel at
// the spawn site.
//
// Packages named main are exempt: their goroutines die with the process
// by construction.
var GoExit = &Analyzer{
	Name: "goexit",
	Doc: "flag go statements whose goroutine has no lifecycle (no ctx, " +
		"WaitGroup, or channel reachable from the spawn) outside main packages",
	Run: runGoExit,
}

func runGoExit(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return
	}
	// Index same-package function and method bodies by their *types.Func
	// so `go x.method()` can be checked one level deep.
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd.Body
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goHasLifecycle(pass, g, bodies) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine is not tied to a lifecycle: no context, WaitGroup, or "+
					"channel reachable from the go statement (pass one in, or justify "+
					"with //pelsvet:allow goexit)")
			return true
		})
	}
}

func goHasLifecycle(pass *Pass, g *ast.GoStmt, bodies map[*types.Func]*ast.BlockStmt) bool {
	// Arguments at the spawn site: a ctx, WaitGroup, or channel handed to
	// the goroutine is a lifecycle regardless of what the body does.
	for _, arg := range g.Call.Args {
		if lifecycleType(pass.Info.TypeOf(arg)) {
			return true
		}
	}
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return lifecycleInBody(pass, fun.Body)
	default:
		// Named callee: scan its body one level deep when it lives in
		// this package.
		var obj types.Object
		switch fun := fun.(type) {
		case *ast.Ident:
			obj = pass.Info.Uses[fun]
		case *ast.SelectorExpr:
			obj = pass.Info.Uses[fun.Sel]
		}
		if fn, ok := obj.(*types.Func); ok {
			if body, ok := bodies[fn]; ok {
				return lifecycleInBody(pass, body)
			}
		}
	}
	return false
}

// lifecycleInBody scans one function body (including nested literals —
// a lifecycle wired through an inner closure still bounds the goroutine)
// for lifecycle evidence.
func lifecycleInBody(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			if lifecycleType(pass.Info.TypeOf(n)) {
				found = true
			}
		case *ast.SelectorExpr:
			if lifecycleType(pass.Info.TypeOf(n)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// lifecycleType reports whether t is a context.Context, sync.WaitGroup
// (or pointer to one), or a channel.
func lifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.String() {
	case "context.Context", "sync.WaitGroup":
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}
