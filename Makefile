# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet lint test test-short race fmt-check ci bench repro cover fuzz chaos smoke obs-demo clean

all: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# PELS-specific static analyzers (determinism, seeded randomness, float
# equality, unit hygiene). Any diagnostic fails the build; intentional
# exceptions carry //pelsvet:allow comments in the source.
lint:
	go run ./cmd/pelsvet ./...

test:
	go test ./...

test-short:
	go test -short ./...

# Race-enabled short tests — the PR gate in .github/workflows/ci.yml.
race:
	go test -race -short ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi

# The exact CI gate, runnable locally before pushing.
ci: build vet fmt-check lint race

# Regenerate every table and figure of the paper (plus extensions).
repro:
	go run ./cmd/pelsbench

bench:
	go test -bench=. -benchmem ./...

cover:
	go test -cover ./internal/...

fuzz:
	go test -fuzz=FuzzDecoder -fuzztime=10s ./internal/fgs/
	go test -run '^$$' -fuzz '^FuzzDecodeDatagram$$' -fuzztime=10s ./internal/wire/
	go test -run '^$$' -fuzz '^FuzzHeaderRoundTrip$$' -fuzztime=10s ./internal/wire/
	go test -run '^$$' -fuzz '^FuzzCorruption$$' -fuzztime=10s ./internal/wire/

# Chaos lane: deterministic fault-schedule experiments plus a live
# stream through a flapping emulated link (the CI chaos-smoke job).
chaos:
	go test -race -short -run 'TestChaos' ./internal/experiments/
	go run ./cmd/pelsbench -only chaos-testbed,chaos-wire

# Live UDP loopback: stream pelsd -> pelsget on 127.0.0.1 and assert the
# base layer survived untouched (the CI wire-smoke job).
smoke:
	go build -o /tmp/pelsd ./cmd/pelsd
	go build -o /tmp/pelsget ./cmd/pelsget
	/tmp/pelsd -addr 127.0.0.1:9000 -frames 200 -duration 30s & \
	sleep 1; /tmp/pelsget -addr 127.0.0.1:9000 -duration 20s -max-green-loss 0; \
	wait

# Observability demo: run one experiment, export every recorded series
# (rate, loss, gamma, per-color drops) through internal/obs, and plot
# the gamma trace in the terminal.
obs-demo:
	go run ./cmd/pelsbench -only fig7 -csv /tmp/pels-obs -json /tmp/pels-obs/results.json
	go run ./cmd/pelsplot -cols gamma_f0 /tmp/pels-obs/fig7_obs.csv

clean:
	go clean ./...
