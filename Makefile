# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet lint lint-strict test test-short race fmt-check ci bench bench-json perfdiff repro cover fuzz chaos smoke load overload obs-demo clean

all: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# PELS-specific static analyzers (determinism, seeded randomness, float
# equality, unit hygiene, lock discipline, zero-alloc contracts, goroutine
# lifecycles). Any diagnostic fails the build; intentional exceptions carry
# //pelsvet:allow comments in the source.
lint:
	go run ./cmd/pelsvet ./...

# The CI lint-strict step: same analyzers, but the findings are captured as
# a machine-readable artifact (same exit semantics — any finding fails).
# Capture-then-cat instead of tee: /bin/sh may be dash, which has no pipefail.
lint-strict:
	@go run ./cmd/pelsvet -json ./... > /tmp/pelsvet.json; st=$$?; \
		cat /tmp/pelsvet.json; exit $$st

test:
	go test ./...

test-short:
	go test -short ./...

# Race-enabled short tests — the PR gate in .github/workflows/ci.yml.
race:
	go test -race -short ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi

# The exact CI gate, runnable locally before pushing. perfdiff runs in
# allocs-only mode here (alloc counts are exact on any machine); the timing
# gate lives in the CI bench job where the hardware is consistent.
ci: build vet fmt-check lint race perfdiff

# Regenerate every table and figure of the paper (plus extensions).
repro:
	go run ./cmd/pelsbench

bench:
	go test -bench=. -benchmem ./...

# --- Perf trajectory ---------------------------------------------------
# BENCH_$(BENCH_V).json at the repo root is the committed benchmark
# snapshot for this growth step; cmd/perfdiff gates CI against it. Micro
# benchmarks run at a fixed iteration count (allocs/op exact, runs quick)
# repeated -count times; perfdiff -emit -best keeps the min-ns/max-allocs
# figure of the repeats, the noise-robust statistic for gating. The
# repo-level figure benchmarks run once and are recorded, not gated.
BENCH_V      := 10
BENCH_MICRO  := ^Benchmark(Wire|Gateway|Pacer|Sim|Netsim|Session|Plan|Priority)
BENCH_MACRO  := ^BenchmarkMacro
# Gated names must all exist in every fresh report the CI bench job makes
# (it only re-runs ./internal/perf), so the gate spells out the perf-package
# benchmarks instead of loosely matching repo-level ones like
# BenchmarkSimulatorThroughput. MacroEngineSeedHeap is recorded but not
# gated: it benchmarks the retained *reference* implementation (GC-heavy,
# load-sensitive), and the gate protects the paths the repo actually runs.
BENCH_GATE   := ^Benchmark(Wire|GatewayMark|PacerReserve|Sim(Heap)?Schedule|NetsimTransit|MacroEngineCalendar|Session(TableLookup|WheelAdvance|FeedbackBatch)|PlanShare|PlanLayers8|PriorityClassify)

define BENCH_RUN
{ go test -run '^$$' -bench '$(BENCH_MICRO)' -benchtime=1000x -count=10 -benchmem ./internal/perf && \
  go test -run '^$$' -bench '$(BENCH_MACRO)' -benchtime=1x -count=5 -benchmem ./internal/perf && \
  go test -run '^$$' -bench . -benchtime=1x -benchmem . ; }
endef

# Refresh the committed snapshot (run on the reference machine, then
# commit the diff alongside the optimization that moved the numbers).
bench-json:
	$(BENCH_RUN) | go run ./cmd/perfdiff -emit -best > BENCH_$(BENCH_V).json
	@echo "wrote BENCH_$(BENCH_V).json"

# Compare a fresh run against the committed snapshot. Allocs-only: local
# machines differ too much for the 20% timing gate CI applies.
perfdiff:
	$(BENCH_RUN) | go run ./cmd/perfdiff -emit -best > /tmp/pels-bench-new.json
	go run ./cmd/perfdiff -base BENCH_$(BENCH_V).json -new /tmp/pels-bench-new.json \
		-gate '$(BENCH_GATE)' -allocs-only

cover:
	go test -cover ./internal/...

fuzz:
	go test -fuzz=FuzzDecoder -fuzztime=10s ./internal/fgs/
	go test -run '^$$' -fuzz '^FuzzPlanLayers$$' -fuzztime=10s ./internal/fgs/
	go test -run '^$$' -fuzz '^FuzzDecodeDatagram$$' -fuzztime=10s ./internal/wire/
	go test -run '^$$' -fuzz '^FuzzHeaderRoundTrip$$' -fuzztime=10s ./internal/wire/
	go test -run '^$$' -fuzz '^FuzzCorruption$$' -fuzztime=10s ./internal/wire/

# Chaos lane: deterministic fault-schedule experiments plus a live
# stream through a flapping emulated link (the CI chaos-smoke job).
chaos:
	go test -race -short -run 'TestChaos' ./internal/experiments/
	go run ./cmd/pelsbench -only chaos-testbed,chaos-wire

# Live UDP loopback: stream pelsd -> pelsget on 127.0.0.1 and assert the
# base layer survived untouched (the CI wire-smoke job).
smoke:
	go build -o /tmp/pelsd ./cmd/pelsd
	go build -o /tmp/pelsget ./cmd/pelsget
	/tmp/pelsd -addr 127.0.0.1:9000 -frames 200 -duration 30s & \
	sleep 1; /tmp/pelsget -addr 127.0.0.1:9000 -duration 20s -max-green-loss 0; \
	wait

# Multi-session load smoke: one pelsd, 500 pelsload receivers sharing the
# loopback bottleneck (the CI load-smoke job). The frame geometry keeps the
# green base layer a small slice of each frame so the structural MKC
# overload (p = α/(β·r) at equilibrium) lands entirely on droppable
# enhancement packets — the gate is zero green loss across all 500
# sessions, everyone streaming, no cross-session bleed.
load:
	go build -o /tmp/pelsd ./cmd/pelsd
	go build -o /tmp/pelsload ./cmd/pelsload
	( /tmp/pelsd -addr 127.0.0.1:9100 -debug 127.0.0.1:9101 \
		-capacity 30mbps -queue 60000 -epoch 50ms \
		-frame-interval 60ms -green 1 -alpha 2kbps -initial-rate 100kbps \
		-frames 0 -duration 25s & ); \
	sleep 1; /tmp/pelsload -addr 127.0.0.1:9100 -sessions 500 \
		-duration 12s -ramp 2s \
		-scrape http://127.0.0.1:9101 -shards-out /tmp/pels-shards.json \
		-max-green-loss 0 -min-streams 500 -assert-isolation

# Overload drills (the CI overload-smoke job). Drill A: a flash crowd of
# 2x MaxSessions against a server whose overload controller is armed well
# below demand — the server must visibly push back (Rejects), shed
# enhancement layers instead of dropping green, and still stream every
# receiver to completion as the crowd drains through retry-after backoff.
# Drill B: half the swarm goes dark mid-run and reconnects in one wave;
# the idle reaper (idle-timeout < storm-resume) must free the dark
# sessions so the wave resumes with fresh sequence spaces — zero green
# loss end to end in both drills.
overload:
	go build -o /tmp/pelsd ./cmd/pelsd
	go build -o /tmp/pelsload ./cmd/pelsload
	( /tmp/pelsd -addr 127.0.0.1:9200 -capacity 4mbps -queue 24000 -epoch 10ms \
		-packet 200 -frame-packets 40 -green 2 -frame-interval 20ms \
		-alpha 50kbps -initial-rate 300kbps -frames 120 -serve \
		-max-sessions 6 -overload-capacity 2mbps -reject-retry-after 300ms \
		-idle-timeout 5s -duration 14s & ); \
	sleep 1; /tmp/pelsload -addr 127.0.0.1:9200 -sessions 12 -sockets 4 \
		-duration 12s -ramp 500ms -hello-retry 150ms -reconnect \
		-min-streams 12 -min-rejects 1 -max-green-loss 0 -assert-isolation
	( /tmp/pelsd -addr 127.0.0.1:9201 -capacity 4mbps -queue 24000 -epoch 10ms \
		-packet 200 -frame-packets 40 -green 2 -frame-interval 20ms \
		-alpha 50kbps -initial-rate 300kbps -frames 0 -serve \
		-max-sessions 16 -idle-timeout 1s -stuck-timeout 3s -duration 13s & ); \
	sleep 1; /tmp/pelsload -addr 127.0.0.1:9201 -sessions 8 -sockets 4 \
		-duration 11s -ramp 500ms -hello-retry 150ms -reconnect \
		-storm-at 3s -storm-frac 0.5 -storm-resume 2s \
		-min-streams 8 -min-resumes 4 -max-green-loss 0 -assert-isolation

# Observability demo: run one experiment, export every recorded series
# (rate, loss, gamma, per-color drops) through internal/obs, and plot
# the gamma trace in the terminal.
obs-demo:
	go run ./cmd/pelsbench -only fig7 -csv /tmp/pels-obs -json /tmp/pels-obs/results.json
	go run ./cmd/pelsplot -cols gamma_f0 /tmp/pels-obs/fig7_obs.csv

clean:
	go clean ./...
