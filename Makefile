# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-short bench repro cover fuzz clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

# Regenerate every table and figure of the paper (plus extensions).
repro:
	go run ./cmd/pelsbench

bench:
	go test -bench=. -benchmem ./...

cover:
	go test -cover ./internal/...

fuzz:
	go test -fuzz=FuzzDecoder -fuzztime=10s ./internal/fgs/

clean:
	go clean ./...
