// Best-effort vs PELS: the paper's headline comparison (§6.5, Fig. 10).
//
// Two identical streaming scenarios run back to back on the Fig. 6
// bar-bell: once with the PELS priority queues and once with a best-effort
// bottleneck that drops enhancement packets uniformly at random (base layer
// protected, as in the paper's baseline). The example prints per-frame
// useful data, utility, and the reconstructed Foreman PSNR for both, plus
// an ASCII PSNR strip chart.
//
// Run with: go run ./examples/besteffort-vs-pels
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "besteffort-vs-pels:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := experiments.DefaultFigure10Config()
	cfg.Duration = 90 * time.Second
	cfg.EvalFrames = 120
	cfg.Levels = cfg.Levels[:1] // the ~10% loss operating point

	fmt.Println("running PELS and best-effort simulations (~10% network loss)...")
	runs, err := experiments.Figure10(cfg)
	if err != nil {
		return err
	}
	r := runs[0]

	fmt.Printf("\n%d flows, measured loss: PELS %.1f%%, best-effort %.1f%%\n",
		r.NumFlows, 100*r.PELSLoss, 100*r.BELoss)
	fmt.Printf("\n%-22s %-14s %-12s %-16s\n", "scheme", "useful/frame", "utility", "PSNR (mean)")
	fmt.Printf("%-22s %-14s %-12s %.2f dB\n", "base layer only", "-", "-", r.BaseMean)
	fmt.Printf("%-22s %-14.1f %-12.3f %.2f dB (+%.1f%%)\n", "best-effort", r.BEUseful, r.BEUtility, r.BEMean, r.BEImprove)
	fmt.Printf("%-22s %-14.1f %-12.3f %.2f dB (+%.1f%%)\n", "PELS", r.PELSUseful, r.PELSUtility, r.PELSMean, r.PELSImprove)
	fmt.Printf("\nPSNR fluctuation: best-effort swings %.1f dB, PELS %.1f dB\n", r.BESwing, r.PELSSwing)

	fmt.Println("\nper-frame PSNR (first 60 frames, '·' = base, 'b' = best-effort, 'P' = PELS):")
	fmt.Print(strip(r, 60))
	fmt.Println("\nthe same packets cross the same bottleneck in both runs — only the drop")
	fmt.Println("*pattern* differs, and that alone is worth ~2-4x in useful video data.")
	return nil
}

// strip renders a crude ASCII chart: one row per 2 dB bin, columns are
// frames.
func strip(r experiments.Figure10Run, frames int) string {
	if frames > len(r.PELSPSNR) {
		frames = len(r.PELSPSNR)
	}
	const lo, hi, step = 14.0, 50.0, 2.0
	rows := int((hi - lo) / step)
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", frames))
	}
	plot := func(vs []float64, ch byte) {
		for f := 0; f < frames && f < len(vs); f++ {
			bin := int((vs[f] - lo) / step)
			if bin < 0 {
				bin = 0
			}
			if bin >= rows {
				bin = rows - 1
			}
			grid[rows-1-bin][f] = ch
		}
	}
	plot(r.BasePSNR, '.')
	plot(r.BEPSNR, 'b')
	plot(r.PELSPSNR, 'P')
	var b strings.Builder
	for i, row := range grid {
		dB := hi - float64(i)*step
		fmt.Fprintf(&b, "%5.0f |%s|\n", dB, string(row))
	}
	fmt.Fprintf(&b, "      +%s+\n", strings.Repeat("-", frames))
	return b.String()
}
