// Video session: a full adaptive streaming session with dynamics.
//
// Four PELS flows share the paper's bar-bell bottleneck with TCP cross
// traffic. Mid-session, four more flows join (halving everyone's fair
// share) and later leave again. The example tracks how flow 0's rate, γ,
// and delivered video quality adapt through the transitions — the
// day-to-day behaviour a streaming deployment of PELS would exhibit.
//
// Run with: go run ./examples/video-session
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/video"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "video-session:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := experiments.DefaultTestbedConfig()
	cfg.NumPELS = 8
	// Flows 0-3 stream the whole session; flows 4-7 join at t=60 s.
	cfg.StartTimes = []time.Duration{0, 0, 0, 0,
		60 * time.Second, 60 * time.Second, 60 * time.Second, 60 * time.Second}
	tb, err := experiments.NewTestbed(cfg)
	if err != nil {
		return err
	}

	// Stop the late joiners at t=120 s, then keep running to t=180 s.
	for i := 4; i < 8; i++ {
		src := tb.Sources[i]
		tb.Eng.At(120*time.Second, src.Stop)
	}
	const duration = 180 * time.Second
	if err := tb.Run(duration); err != nil {
		return err
	}

	scfg := cfg.Session.WithDefaults()
	fmt.Println("adaptive session: 4 flows, +4 at t=60s, -4 at t=120s (flow 0 shown)")
	fmt.Printf("fair share: %v with 4 flows, %v with 8\n\n",
		scfg.MKC.StationaryRate(cfg.PELSCapacity(), 4),
		scfg.MKC.StationaryRate(cfg.PELSCapacity(), 8))

	fmt.Printf("%8s %12s %10s %14s\n", "t(s)", "rate(kb/s)", "gamma", "phase")
	for at := 10 * time.Second; at <= duration; at += 10 * time.Second {
		phase := "4 flows"
		if at > 60*time.Second && at <= 120*time.Second {
			phase = "8 flows"
		} else if at > 120*time.Second {
			phase = "4 flows again"
		}
		fmt.Printf("%8.0f %12.0f %10.3f %14s\n",
			at.Seconds(), lastBefore(tb, 0, at), gammaBefore(tb, 0, at), phase)
	}

	// Reconstruct flow 0's video through the Foreman R-D model.
	sink := tb.Sinks[0]
	frames := sink.Frames()
	if len(frames) > 1 {
		frames = frames[:len(frames)-1]
	}
	spec := scfg.Frame
	useful := make([]int, len(frames))
	complete := make([]bool, len(frames))
	for i, f := range frames {
		useful[i] = f.UsefulBytes(spec.PacketSize)
		complete[i] = f.BaseComplete
	}
	trace := video.ForemanTrace(len(frames))
	model := video.DefaultRDModel()
	model.MaxEnhBytes = spec.MaxEnhBytes()
	psnr := video.SequencePSNR(trace, model, useful, complete)

	third := len(psnr) / 3
	fmt.Printf("\nflow 0 video quality by phase:\n")
	fmt.Printf("  4 flows:       %.2f dB mean PSNR\n", mean(psnr[:third]))
	fmt.Printf("  8 flows:       %.2f dB (lower share → thinner enhancement)\n", mean(psnr[third:2*third]))
	fmt.Printf("  4 flows again: %.2f dB (rate reclaimed)\n", mean(psnr[2*third:]))
	st := sink.Stats()
	fmt.Printf("\nutility stayed at %.3f across every transition — the γ controller\n", st.MeanUtility)
	fmt.Println("re-aims the red probes at each new loss level so yellow data survives.")
	return nil
}

func lastBefore(tb *experiments.Testbed, flow int, at time.Duration) float64 {
	v := 0.0
	for _, s := range tb.RateSeries[flow].Samples() {
		if s.At > at {
			break
		}
		v = s.Value
	}
	return v
}

func gammaBefore(tb *experiments.Testbed, flow int, at time.Duration) float64 {
	v := 0.0
	for _, s := range tb.GammaSeries[flow].Samples() {
		if s.At > at {
			break
		}
		v = s.Value
	}
	return v
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
