// Custom topology: PELS beyond the paper's bar-bell.
//
// The library is not tied to the Fig. 6 testbed: this example hand-builds a
// "parking lot" — two congested PELS routers in series — and shows the
// §5.2 multi-router machinery at work: a long flow crossing both hops reacts
// to whichever router is more congested (max-min), while short flows load
// each hop separately.
//
//	long:            L ──► r1 ═══► r2 ═══► r3 ──► L'
//	short hop 1:     A ──► r1 ═══► r2 ──► A'
//	short hop 2:              B ──► r2 ═══► r3 ──► B'
//
// Run with: go run ./examples/custom-topology
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/aqm"
	"repro/internal/netsim"
	"repro/internal/pels"
	"repro/internal/sim"
	"repro/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "custom-topology:", err)
		os.Exit(1)
	}
}

func run() error {
	eng := sim.NewEngine(1)
	nw := netsim.NewNetwork(eng)

	r1 := nw.NewRouter("r1")
	r2 := nw.NewRouter("r2")
	r3 := nw.NewRouter("r3")

	// Both inter-router links run PELS AQM with different capacities:
	// hop 1 has 1.2 mb/s for video, hop 2 only 0.8 mb/s.
	const c1, c2 = 1200 * units.Kbps, 800 * units.Kbps
	b1 := aqm.NewBottleneck(aqm.DefaultBottleneckConfig())
	b2 := aqm.NewBottleneck(aqm.DefaultBottleneckConfig())

	access := netsim.LinkConfig{Rate: 10 * units.Mbps, Delay: 2 * time.Millisecond}
	hop1, _ := nw.Connect(r1, r2,
		netsim.LinkConfig{Rate: c1, Delay: 5 * time.Millisecond, Disc: b1.Disc},
		netsim.LinkConfig{Rate: c1, Delay: 5 * time.Millisecond})
	hop2, _ := nw.Connect(r2, r3,
		netsim.LinkConfig{Rate: c2, Delay: 5 * time.Millisecond, Disc: b2.Disc},
		netsim.LinkConfig{Rate: c2, Delay: 5 * time.Millisecond})
	// Feedback is attached per congested link (per output queue): packets
	// that leave a router through an uncongested port must not be counted
	// against — or stamped with — the bottleneck's loss.
	hop1.Proc = aqm.NewFeedback(eng, aqm.FeedbackConfig{
		RouterID: 1, Interval: 30 * time.Millisecond, Capacity: c1,
	})
	hop2.Proc = aqm.NewFeedback(eng, aqm.FeedbackConfig{
		RouterID: 2, Interval: 30 * time.Millisecond, Capacity: c2,
	})

	// Hosts: the long flow L→L' crosses both congested hops; A→A' loads
	// hop 1 only, B→B' hop 2 only.
	mkHost := func(name string, attach netsim.Node) *netsim.Host {
		h := nw.NewHost(name)
		nw.Connect(h, attach, access, access)
		return h
	}
	long1, long2 := mkHost("L", r1), mkHost("L'", r3)
	a1, a2 := mkHost("A", r1), mkHost("A'", r2)
	b1h, b2h := mkHost("B", r2), mkHost("B'", r3)
	if err := nw.ComputeRoutes(); err != nil {
		return err
	}

	type session struct {
		name string
		src  *pels.Source
		sink *pels.Sink
	}
	mkSession := func(name string, flow int, from, to *netsim.Host) (session, error) {
		src, sink, err := pels.Session(nw, from, to, pels.Config{Flow: flow})
		return session{name, src, sink}, err
	}
	sessions := make([]session, 0, 3)
	for _, spec := range []struct {
		name     string
		flow     int
		from, to *netsim.Host
	}{
		{"long (both hops)", 1, long1, long2},
		{"short hop 1", 2, a1, a2},
		{"short hop 2", 3, b1h, b2h},
	} {
		s, err := mkSession(spec.name, spec.flow, spec.from, spec.to)
		if err != nil {
			return err
		}
		sessions = append(sessions, s)
		s.src.Start(0)
	}

	if err := eng.RunUntil(60 * time.Second); err != nil {
		return err
	}

	fmt.Println("parking-lot topology: hop1 = 1.2 mb/s, hop2 = 0.8 mb/s video capacity")
	fmt.Printf("%-18s %-12s %-10s %-18s\n", "flow", "rate(kb/s)", "utility", "bottleneck")
	for _, s := range sessions {
		fb := s.sink.LatestFeedback()
		fmt.Printf("%-18s %-12.0f %-10.3f hop %d\n",
			s.name, s.src.Rate().KbpsValue(), s.sink.Stats().MeanUtility, fb.RouterID)
	}
	fmt.Println("\nthe long flow reacts to whichever hop is more congested at each instant")
	fmt.Println("(max-of-losses feedback), so with BOTH hops loaded it ends up below the")
	fmt.Println("single-hop flows — the classic long-path penalty — while every flow's")
	fmt.Println("utility stays protected by its own priority queues.")
	return nil
}
