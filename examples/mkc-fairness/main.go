// MKC fairness: reproduce the dynamics of paper Fig. 9 (right) and compare
// Max-min Kelly Control against AIMD.
//
// Flow F1 starts alone and exponentially claims the whole PELS capacity;
// F2 joins at t=10 s and both converge — without oscillation — to the fair
// share r* = C/N + α/β (paper eq. 10, Lemma 6). The same scenario is then
// repeated with AIMD sources to show the sawtooth the paper calls
// "unacceptable" for video.
//
// Run with: go run ./examples/mkc-fairness
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cc"
	"repro/internal/experiments"
	"repro/internal/packet"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mkc-fairness:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("=== MKC (paper Fig. 9 right) ===")
	res, err := experiments.Figure9(experiments.DefaultFigure9Config())
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFigure9(res))
	fmt.Println("\nrate evolution (kb/s, sampled every 2s):")
	printRates(res.Rates, 40*time.Second)

	fmt.Println("\n=== the same feedback driving AIMD ===")
	aimdSawtooth()
	return nil
}

func printRates(rates []*stats.TimeSeries, duration time.Duration) {
	fmt.Printf("%6s", "t(s)")
	for i := range rates {
		fmt.Printf("%10s", fmt.Sprintf("F%d", i+1))
	}
	fmt.Println()
	for at := time.Duration(0); at <= duration; at += 2 * time.Second {
		fmt.Printf("%6.0f", at.Seconds())
		for _, rs := range rates {
			v := valueAt(rs, at)
			if v < 0 {
				fmt.Printf("%10s", "-")
			} else {
				fmt.Printf("%10.0f", v)
			}
		}
		fmt.Println()
	}
}

// valueAt returns the most recent sample at or before t, or -1.
func valueAt(ts *stats.TimeSeries, t time.Duration) float64 {
	v := -1.0
	for _, s := range ts.Samples() {
		if s.At > t {
			break
		}
		v = s.Value
	}
	return v
}

// aimdSawtooth drives MKC and AIMD controllers against the same analytic
// single-bottleneck feedback and prints their tail behaviour.
func aimdSawtooth() {
	const capacity = 2000.0 // kb/s
	mkc := cc.NewMKC(cc.DefaultMKCConfig())
	aimd := cc.NewAIMD(cc.DefaultAIMDConfig())
	run := func(name string, ctrl cc.Controller) {
		var tail []float64
		for k := uint64(1); k <= 400; k++ {
			r := ctrl.Rate().KbpsValue()
			loss := (r - capacity) / r
			ctrl.OnFeedback(packet.Feedback{RouterID: 1, Epoch: k, Loss: loss, Valid: true})
			if k > 300 {
				tail = append(tail, ctrl.Rate().KbpsValue())
			}
		}
		fmt.Printf("  %-5s tail: mean %7.1f kb/s, stddev %6.1f, min %7.1f, max %7.1f\n",
			name, stats.Mean(tail), stats.StdDev(tail), stats.Percentile(tail, 0), stats.Percentile(tail, 100))
	}
	run("MKC", mkc)
	run("AIMD", aimd)
	fmt.Println("\nMKC sits at a single stationary point; AIMD oscillates forever —")
	fmt.Println("which is why the paper pairs PELS with Kelly controls for video.")
}
