// Quickstart: stream one PELS video flow across a congested bottleneck and
// print what the framework delivers.
//
// This is the smallest end-to-end use of the library: build a topology
// (netsim), attach the PELS queue structure and feedback processor to the
// bottleneck (aqm), create a streaming session (pels), run (sim), and read
// the decode statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/aqm"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pels"
	"repro/internal/sim"
	"repro/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A deterministic discrete-event engine drives everything.
	eng := sim.NewEngine(1)
	nw := netsim.NewNetwork(eng)

	// Topology: sender — r1 —(500 kb/s bottleneck)— r2 — receiver.
	sender := nw.NewHost("sender")
	receiver := nw.NewHost("receiver")
	r1 := nw.NewRouter("r1")
	r2 := nw.NewRouter("r2")

	// The PELS router: strict-priority green/yellow/red queues and a
	// feedback processor computing p = (R−C)/R every 30 ms (paper eq. 11).
	const capacity = 500 * units.Kbps
	bottleneck := aqm.NewBottleneck(aqm.DefaultBottleneckConfig())
	feedback := aqm.NewFeedback(eng, aqm.FeedbackConfig{
		RouterID: r1.ID(),
		Interval: 30 * time.Millisecond,
		Capacity: capacity,
	})

	access := netsim.LinkConfig{Rate: 10 * units.Mbps, Delay: 5 * time.Millisecond}
	nw.Connect(sender, r1, access, access)
	forward, _ := nw.Connect(r1, r2,
		netsim.LinkConfig{Rate: capacity, Delay: 10 * time.Millisecond, Disc: bottleneck.Disc},
		netsim.LinkConfig{Rate: capacity, Delay: 10 * time.Millisecond})
	forward.Proc = feedback // feedback is per bottleneck queue, not per router
	nw.Connect(r2, receiver, access, access)
	if err := nw.ComputeRoutes(); err != nil {
		return err
	}

	// One streaming session with the paper's defaults: MPEG-4 FGS frames
	// of 126×500 B (21 green), MKC congestion control (α=20 kb/s, β=0.5),
	// γ controller (σ=0.5, p_thr=0.75).
	src, sink, err := pels.Session(nw, sender, receiver, pels.Config{Flow: 1})
	if err != nil {
		return err
	}
	src.Start(0)

	if err := eng.RunUntil(30 * time.Second); err != nil {
		return err
	}

	cfg := pels.Config{Flow: 1}.WithDefaults()
	fmt.Println("PELS quickstart — one flow over a 500 kb/s bottleneck for 30s")
	fmt.Printf("  predicted equilibrium rate (eq. 10): %v\n", cfg.MKC.StationaryRate(capacity, 1))
	fmt.Printf("  actual sending rate:                 %v\n", src.Rate())
	fmt.Printf("  gamma (red fraction):                %.3f\n", src.Gamma())

	st := sink.Stats()
	fmt.Printf("  frames decoded:                      %d (base layer complete in %d)\n", st.Frames, st.BaseComplete)
	fmt.Printf("  utility (useful/received FGS):       %.3f\n", st.MeanUtility)

	for _, c := range []packet.Color{packet.Green, packet.Yellow, packet.Red} {
		cnt := bottleneck.PELS.ColorCounters(c)
		fmt.Printf("  %-6s: %5d arrived, %4d dropped (%.1f%%)\n", c, cnt.Arrived, cnt.Dropped, 100*cnt.LossRate())
	}
	fmt.Println("\nnote how drops concentrate in the red queue: that is the whole point —")
	fmt.Println("red packets probe for bandwidth so yellow and green never lose data.")
	return nil
}
